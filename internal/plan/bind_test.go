package plan

import (
	"strings"
	"testing"

	"ishare/internal/catalog"
	"ishare/internal/value"
)

// testCatalog builds a minimal TPC-H-shaped catalog for binder tests.
func testCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	c := catalog.New()
	add := func(name string, cols ...catalog.Column) {
		if err := c.Add(&catalog.Table{Name: name, Columns: cols, Stats: catalog.TableStats{RowCount: 100}}); err != nil {
			t.Fatal(err)
		}
	}
	add("lineitem",
		catalog.Column{Name: "l_partkey", Type: value.KindInt},
		catalog.Column{Name: "l_quantity", Type: value.KindFloat},
		catalog.Column{Name: "l_extendedprice", Type: value.KindFloat},
	)
	add("part",
		catalog.Column{Name: "p_partkey", Type: value.KindInt},
		catalog.Column{Name: "p_brand", Type: value.KindString},
		catalog.Column{Name: "p_size", Type: value.KindInt},
	)
	add("partsupp",
		catalog.Column{Name: "ps_partkey", Type: value.KindInt},
		catalog.Column{Name: "ps_availqty", Type: value.KindInt},
	)
	return c
}

func mustBind(t *testing.T, sql string, c *catalog.Catalog) Node {
	t.Helper()
	n, err := ParseAndBind(sql, c)
	if err != nil {
		t.Fatalf("ParseAndBind(%q): %v", sql, err)
	}
	if err := Validate(n); err != nil {
		t.Fatalf("Validate: %v\n%s", err, Explain(n))
	}
	return n
}

func TestBindSimpleProjection(t *testing.T) {
	n := mustBind(t, "SELECT l_partkey, l_quantity FROM lineitem", testCatalog(t))
	p, ok := n.(*Project)
	if !ok {
		t.Fatalf("root = %T", n)
	}
	s := p.Schema()
	if s[0].Name != "l_partkey" || s[1].Name != "l_quantity" {
		t.Errorf("schema = %v", s)
	}
	if _, ok := p.Input.(*Scan); !ok {
		t.Errorf("input = %T, want Scan", p.Input)
	}
}

func TestBindPushdownSelect(t *testing.T) {
	n := mustBind(t, "SELECT p_partkey FROM part WHERE p_size > 10", testCatalog(t))
	p := n.(*Project)
	sel, ok := p.Input.(*Select)
	if !ok {
		t.Fatalf("expected pushed-down select, got %T", p.Input)
	}
	if _, ok := sel.Input.(*Scan); !ok {
		t.Errorf("select input = %T", sel.Input)
	}
}

func TestBindJoin(t *testing.T) {
	n := mustBind(t, `SELECT p_brand, l_quantity FROM part, lineitem
		WHERE p_partkey = l_partkey AND p_size = 15`, testCatalog(t))
	p := n.(*Project)
	j, ok := p.Input.(*Join)
	if !ok {
		t.Fatalf("expected join, got %T:\n%s", p.Input, Explain(n))
	}
	if len(j.LeftKeys) != 1 || len(j.RightKeys) != 1 {
		t.Fatalf("keys = %v/%v", j.LeftKeys, j.RightKeys)
	}
	// p_size pushdown goes under the left side.
	if _, ok := j.Left.(*Select); !ok {
		t.Errorf("left = %T, want pushed Select", j.Left)
	}
	if _, ok := j.Right.(*Scan); !ok {
		t.Errorf("right = %T, want Scan", j.Right)
	}
}

func TestBindAggregate(t *testing.T) {
	n := mustBind(t, `SELECT l_partkey, SUM(l_quantity) AS sum_quantity
		FROM lineitem GROUP BY l_partkey`, testCatalog(t))
	p := n.(*Project)
	a, ok := p.Input.(*Aggregate)
	if !ok {
		t.Fatalf("expected aggregate, got %T", p.Input)
	}
	if len(a.GroupBy) != 1 || len(a.Aggs) != 1 {
		t.Fatalf("groups=%d aggs=%d", len(a.GroupBy), len(a.Aggs))
	}
	if a.Aggs[0].Func != AggSum {
		t.Errorf("agg func = %v", a.Aggs[0].Func)
	}
	// The aggregate output column is named after the select alias so
	// subquery consumers can reference it.
	if a.Aggs[0].Name != "sum_quantity" {
		t.Errorf("agg name = %q", a.Aggs[0].Name)
	}
	s := p.Schema()
	if s[1].Name != "sum_quantity" {
		t.Errorf("schema = %v", s)
	}
}

func TestBindAggWithoutGroupBy(t *testing.T) {
	n := mustBind(t, "SELECT COUNT(*), SUM(l_quantity) FROM lineitem", testCatalog(t))
	a := n.(*Project).Input.(*Aggregate)
	if len(a.GroupBy) != 0 || len(a.Aggs) != 2 {
		t.Fatalf("groups=%d aggs=%d", len(a.GroupBy), len(a.Aggs))
	}
	if a.Aggs[0].Func != AggCount || a.Aggs[0].Arg != nil {
		t.Errorf("count spec = %+v", a.Aggs[0])
	}
}

func TestBindAggExpression(t *testing.T) {
	// Expressions over aggregates become a Project above the Aggregate.
	n := mustBind(t, `SELECT SUM(l_extendedprice) / SUM(l_quantity) AS avg_price
		FROM lineitem`, testCatalog(t))
	p := n.(*Project)
	a := p.Input.(*Aggregate)
	if len(a.Aggs) != 2 {
		t.Fatalf("aggs = %d, want 2", len(a.Aggs))
	}
	if p.Schema()[0].Name != "avg_price" {
		t.Errorf("schema = %v", p.Schema())
	}
}

func TestBindDedupAggregates(t *testing.T) {
	n := mustBind(t, `SELECT SUM(l_quantity), SUM(l_quantity) + 1 FROM lineitem`, testCatalog(t))
	a := n.(*Project).Input.(*Aggregate)
	if len(a.Aggs) != 1 {
		t.Errorf("identical aggregates not deduplicated: %d", len(a.Aggs))
	}
}

func TestBindHaving(t *testing.T) {
	n := mustBind(t, `SELECT l_partkey, SUM(l_quantity) AS sq FROM lineitem
		GROUP BY l_partkey HAVING SUM(l_quantity) > 100`, testCatalog(t))
	p := n.(*Project)
	sel, ok := p.Input.(*Select)
	if !ok {
		t.Fatalf("expected HAVING select, got %T", p.Input)
	}
	if _, ok := sel.Input.(*Aggregate); !ok {
		t.Errorf("select input = %T", sel.Input)
	}
}

func TestBindPaperQueryA(t *testing.T) {
	sql := `SELECT SUM(agg_l.sum_quantity) AS total_sum_quantity
		FROM part p, (SELECT SUM(l_quantity) AS sum_quantity
			FROM lineitem GROUP BY l_partkey) agg_l
		WHERE p_partkey == l_partkey`
	n := mustBind(t, sql, testCatalog(t))
	text := Explain(n)
	for _, want := range []string{"Join", "Aggregate", "Scan part", "Scan lineitem"} {
		if !strings.Contains(text, want) {
			t.Errorf("plan missing %q:\n%s", want, text)
		}
	}
}

func TestBindPaperQueryB(t *testing.T) {
	sql := `SELECT ps_partkey FROM partsupp ps,
		(SELECT AVG(agg_l.sum_quantity) AS avg_quantity FROM part p,
			(SELECT SUM(l_quantity) AS sum_quantity FROM lineitem GROUP BY l_partkey) agg_l
			WHERE p_partkey = l_partkey AND p_brand == 'Brand#23' AND p_size == 15) x
		WHERE ps.ps_availqty < avg_quantity`
	n := mustBind(t, sql, testCatalog(t))
	text := Explain(n)
	// The outer join between partsupp and the scalar subquery has no equi
	// keys: it must be a cross join followed by a residual select.
	if !strings.Contains(text, "Join") {
		t.Errorf("plan missing join:\n%s", text)
	}
	if !strings.Contains(text, "ps_availqty") {
		t.Errorf("plan missing residual predicate:\n%s", text)
	}
}

func TestBindErrors(t *testing.T) {
	c := testCatalog(t)
	bad := []string{
		"SELECT nosuch FROM lineitem",
		"SELECT l_partkey FROM nosuch",
		"SELECT x.l_partkey FROM lineitem",
		"SELECT l_partkey FROM lineitem, part WHERE p_partkey = nosuch",
		"SELECT l_quantity FROM lineitem GROUP BY l_partkey",                // not a group key
		"SELECT l_partkey FROM lineitem HAVING SUM(l_quantity) > 1",         // having w/o group/agg is fine? no: requires agg — accepted
		"SELECT p_partkey, l_partkey FROM part, lineitem WHERE p_brand = 3", // type error
	}
	for _, sql := range bad[:5] {
		if _, err := ParseAndBind(sql, c); err == nil {
			t.Errorf("ParseAndBind(%q) accepted invalid query", sql)
		}
	}
	// Type errors are caught by Validate.
	n, err := ParseAndBind(bad[6], c)
	if err == nil {
		if err := Validate(n); err == nil {
			t.Error("type error not caught")
		}
	}
}

func TestBindAmbiguousColumn(t *testing.T) {
	c := catalog.New()
	for _, name := range []string{"t1", "t2"} {
		if err := c.Add(&catalog.Table{Name: name, Columns: []catalog.Column{{Name: "x", Type: value.KindInt}}}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ParseAndBind("SELECT x FROM t1, t2", c); err == nil {
		t.Error("ambiguous column accepted")
	}
	if _, err := ParseAndBind("SELECT t1.x FROM t1, t2 WHERE t1.x = t2.x", c); err != nil {
		t.Errorf("qualified resolution failed: %v", err)
	}
}

func TestSignatureSharability(t *testing.T) {
	c := testCatalog(t)
	// Same structure with different select predicates: sharable.
	a := mustBind(t, "SELECT p_partkey FROM part WHERE p_size > 10", c)
	b := mustBind(t, "SELECT p_brand FROM part WHERE p_size < 3", c)
	if a.Signature() != b.Signature() {
		t.Errorf("selects/projects must not affect signatures:\n%s\n%s", a.Signature(), b.Signature())
	}
	// Different aggregate: not sharable.
	g1 := mustBind(t, "SELECT SUM(l_quantity) FROM lineitem GROUP BY l_partkey", c)
	g2 := mustBind(t, "SELECT MAX(l_quantity) FROM lineitem GROUP BY l_partkey", c)
	if g1.Signature() == g2.Signature() {
		t.Error("different aggregates must have different signatures")
	}
}

func TestExplainAndOperators(t *testing.T) {
	n := mustBind(t, `SELECT p_brand, SUM(l_quantity) FROM part, lineitem
		WHERE p_partkey = l_partkey GROUP BY p_brand`, testCatalog(t))
	if got := Operators(n); got != 5 { // project, agg, join, scan, scan
		t.Errorf("Operators = %d:\n%s", got, Explain(n))
	}
	text := Explain(n)
	if !strings.HasPrefix(text, "Project") {
		t.Errorf("explain = %q", text)
	}
}

func TestBlocking(t *testing.T) {
	c := testCatalog(t)
	agg := mustBind(t, "SELECT SUM(l_quantity) FROM lineitem", c).(*Project).Input
	if !Blocking(agg) {
		t.Error("aggregate must be blocking")
	}
	if Blocking(&Scan{}) {
		t.Error("scan must not be blocking")
	}
}
