package plan

import (
	"fmt"
	"strconv"
	"strings"

	"ishare/internal/catalog"
	"ishare/internal/expr"
	"ishare/internal/sqlparser"
	"ishare/internal/trace"
	"ishare/internal/value"
)

// Bind resolves a parsed SELECT statement against the catalog and produces a
// logical plan: pushed-down selects above scans, a left-deep tree of inner
// equi-joins in FROM order (cross joins for scalar-subquery items), residual
// selects, an aggregate when needed, and a final project.
func Bind(stmt *sqlparser.SelectStmt, cat *catalog.Catalog) (Node, error) {
	b := &binder{cat: cat}
	return b.bindSelect(stmt)
}

// ParseAndBind parses SQL text and binds it in one step.
func ParseAndBind(sql string, cat *catalog.Catalog) (Node, error) {
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		return nil, err
	}
	return Bind(stmt, cat)
}

// ParseAndBindTraced is ParseAndBind with parse-phase tracing: the parse
// itself is spanned by sqlparser.ParseTraced and the bind gets its own span
// on the same track. A nil tracer makes it equivalent to ParseAndBind.
func ParseAndBindTraced(sql string, cat *catalog.Catalog, tr *trace.Tracer) (Node, error) {
	stmt, err := sqlparser.ParseTraced(sql, tr)
	if err != nil {
		return nil, err
	}
	bindStart := tr.Since()
	n, err := Bind(stmt, cat)
	if tr != nil && err == nil {
		pid := tr.Process("optimizer")
		tr.Span(pid, 5, "parse", "plan.bind", bindStart, tr.Since())
	}
	return n, err
}

type binder struct {
	cat *catalog.Catalog
}

// fromSource is one bound FROM item: its plan and position in the combined
// row.
type fromSource struct {
	alias  string
	node   Node
	offset int // start of this item's fields in the combined schema
	width  int
}

func (b *binder) bindSelect(stmt *sqlparser.SelectStmt) (Node, error) {
	if len(stmt.From) == 0 {
		return nil, fmt.Errorf("plan: FROM clause is required")
	}
	// Bind FROM items.
	sources := make([]fromSource, 0, len(stmt.From))
	offset := 0
	for _, fi := range stmt.From {
		var n Node
		var err error
		switch {
		case fi.Sub != nil:
			n, err = b.bindSelect(fi.Sub)
			if err == nil {
				n = exportGroupKeys(n)
			}
		default:
			var t *catalog.Table
			t, err = b.cat.Lookup(fi.Table)
			if err == nil {
				n = &Scan{Table: t}
			}
		}
		if err != nil {
			return nil, err
		}
		w := len(n.Schema())
		sources = append(sources, fromSource{alias: fi.Alias, node: n, offset: offset, width: w})
		offset += w
	}
	scope := newScope(sources)

	// Classify WHERE conjuncts.
	var (
		perSource = make([][]expr.Expr, len(sources)) // pushed-down filters
		joinPreds []joinPred                          // equi predicates across items
		residual  []expr.Expr                         // everything else
	)
	if stmt.Where != nil {
		bound, err := b.bindExpr(stmt.Where, scope, nil)
		if err != nil {
			return nil, err
		}
		for _, c := range expr.Conjuncts(bound) {
			srcs := scope.sourcesOf(c)
			switch {
			case len(srcs) == 1:
				perSource[srcs[0]] = append(perSource[srcs[0]], c)
			case len(srcs) == 2 && isColEqCol(c):
				eq := c.(*expr.Binary)
				l := eq.L.(*expr.Column)
				r := eq.R.(*expr.Column)
				joinPreds = append(joinPreds, joinPred{l.Index, r.Index})
			default:
				residual = append(residual, c)
			}
		}
	}

	// Push single-source predicates below the joins.
	for i, preds := range perSource {
		if len(preds) == 0 {
			continue
		}
		local := make([]expr.Expr, len(preds))
		m := shiftMap(preds, -sources[i].offset)
		for j, p := range preds {
			local[j] = expr.Remap(p, m)
		}
		sources[i].node = &Select{Input: sources[i].node, Pred: expr.And(local...)}
	}

	// Left-deep join tree in FROM order. Keys are the equi predicates whose
	// sides fall in the joined prefix and the incoming item.
	tree := sources[0].node
	prefixWidth := sources[0].width
	for i := 1; i < len(sources); i++ {
		src := sources[i]
		var lk, rk []int
		rest := joinPreds[:0]
		for _, jp := range joinPreds {
			a, c := jp.a, jp.b
			if a > c {
				a, c = c, a
			}
			if a < prefixWidth && c >= src.offset && c < src.offset+src.width {
				lk = append(lk, a)
				rk = append(rk, c-src.offset)
			} else {
				rest = append(rest, jp)
			}
		}
		joinPreds = rest
		tree = &Join{Left: tree, Right: src.node, LeftKeys: lk, RightKeys: rk}
		prefixWidth += src.width
	}
	// Any join predicate not consumed (e.g. referencing a later prefix) is a
	// residual filter over the combined schema.
	for _, jp := range joinPreds {
		ls := scope.fields
		residual = append(residual, &expr.Binary{
			Op: expr.OpEq,
			L:  &expr.Column{Index: jp.a, Name: ls[jp.a].Name, Kind: ls[jp.a].Kind},
			R:  &expr.Column{Index: jp.b, Name: ls[jp.b].Name, Kind: ls[jp.b].Kind},
		})
	}
	if len(residual) > 0 {
		tree = &Select{Input: tree, Pred: expr.And(residual...)}
	}

	return b.bindOutput(stmt, tree, scope)
}

type joinPred struct{ a, b int }

// exportGroupKeys widens a derived table's projection with any group-by
// columns the select list omitted. The paper's example queries reference a
// subquery's grouping key from the outer block (e.g. joining on l_partkey
// through agg_l), so the dialect makes grouping keys implicitly visible.
func exportGroupKeys(n Node) Node {
	p, ok := n.(*Project)
	if !ok {
		return n
	}
	in := p.Input
	if s, ok := in.(*Select); ok {
		in = s.Input
	}
	a, ok := in.(*Aggregate)
	if !ok {
		return n
	}
	have := make(map[int]bool)
	for _, ne := range p.Exprs {
		if c, ok := ne.E.(*expr.Column); ok {
			have[c.Index] = true
		}
	}
	exprs := p.Exprs
	for i, g := range a.GroupBy {
		if !have[i] {
			exprs = append(exprs, NamedExpr{
				Name: g.Name,
				E:    &expr.Column{Index: i, Name: g.Name, Kind: g.E.Type()},
			})
		}
	}
	return &Project{Input: p.Input, Exprs: exprs}
}

func isColEqCol(e expr.Expr) bool {
	bin, ok := e.(*expr.Binary)
	if !ok || bin.Op != expr.OpEq {
		return false
	}
	_, lok := bin.L.(*expr.Column)
	_, rok := bin.R.(*expr.Column)
	return lok && rok
}

// shiftMap builds a remapping that shifts every referenced column by delta.
func shiftMap(exprs []expr.Expr, delta int) map[int]int {
	m := make(map[int]int)
	for _, e := range exprs {
		for _, c := range expr.Columns(e) {
			m[c] = c + delta
		}
	}
	return m
}

// bindOutput handles GROUP BY, aggregates, HAVING and the final projection.
func (b *binder) bindOutput(stmt *sqlparser.SelectStmt, input Node, scope *scope) (Node, error) {
	// Collect aggregate calls from the select list and HAVING.
	var collected []aggUse
	hasAgg := false
	for _, item := range stmt.Items {
		if containsAgg(item.E) {
			hasAgg = true
		}
	}
	if stmt.Having != nil {
		if !hasAgg && len(stmt.GroupBy) == 0 {
			return nil, fmt.Errorf("plan: HAVING requires aggregation")
		}
		hasAgg = hasAgg || containsAgg(stmt.Having)
	}
	if !hasAgg && len(stmt.GroupBy) == 0 {
		// Plain projection.
		exprs := make([]NamedExpr, len(stmt.Items))
		for i, item := range stmt.Items {
			e, err := b.bindExpr(item.E, scope, nil)
			if err != nil {
				return nil, err
			}
			exprs[i] = NamedExpr{Name: b.itemName(item, i), E: e}
		}
		return &Project{Input: input, Exprs: exprs}, nil
	}

	// Bind group-by expressions over the join output.
	groups := make([]NamedExpr, len(stmt.GroupBy))
	groupKeys := make([]string, len(stmt.GroupBy))
	for i, g := range stmt.GroupBy {
		e, err := b.bindExpr(g, scope, nil)
		if err != nil {
			return nil, err
		}
		name := "group_" + strconv.Itoa(i)
		if c, ok := e.(*expr.Column); ok {
			name = c.Name
		}
		groups[i] = NamedExpr{Name: name, E: e}
		groupKeys[i] = expr.Canon(e)
	}

	// Rewrite select items and HAVING: aggregate calls become references to
	// aggregate outputs, group expressions become references to group
	// columns.
	agg := &Aggregate{Input: input, GroupBy: groups}
	rw := &aggRewriter{
		b:         b,
		scope:     scope,
		agg:       agg,
		groupKeys: groupKeys,
		uses:      &collected,
	}
	exprs := make([]NamedExpr, len(stmt.Items))
	for i, item := range stmt.Items {
		e, err := rw.rewrite(item.E)
		if err != nil {
			return nil, err
		}
		name := b.itemName(item, i)
		exprs[i] = NamedExpr{Name: name, E: e}
	}
	var havingPred expr.Expr
	if stmt.Having != nil {
		e, err := rw.rewrite(stmt.Having)
		if err != nil {
			return nil, err
		}
		havingPred = e
	}
	// Name aggregate outputs after their only consumer when unambiguous:
	// SELECT SUM(x) AS total ... names the aggregate column "total", which
	// matters for outer queries referencing subquery fields.
	for i := range stmt.Items {
		if c, ok := exprs[i].E.(*expr.Column); ok && c.Index >= len(groups) {
			spec := &agg.Aggs[c.Index-len(groups)]
			if spec.Name == "" || strings.HasPrefix(spec.Name, "agg_") {
				spec.Name = exprs[i].Name
				c.Name = exprs[i].Name
			}
		}
	}

	var out Node = agg
	if havingPred != nil {
		out = &Select{Input: out, Pred: havingPred}
	}
	return &Project{Input: out, Exprs: exprs}, nil
}

// itemName derives the output column name of a select item.
func (b *binder) itemName(item sqlparser.SelectItem, i int) string {
	if item.Alias != "" {
		return item.Alias
	}
	if id, ok := item.E.(*sqlparser.Ident); ok {
		return id.Name
	}
	if f, ok := item.E.(*sqlparser.FuncExpr); ok {
		if id, ok2 := f.Arg.(*sqlparser.Ident); ok2 {
			return f.Name + "_" + id.Name
		}
		return f.Name
	}
	return "col_" + strconv.Itoa(i)
}

type aggUse struct {
	spec AggSpec
	key  string
}

// aggRewriter rewrites an AST expression into an expression over the
// aggregate's output schema (groups then aggs), registering aggregate specs
// on demand and deduplicating identical calls.
type aggRewriter struct {
	b         *binder
	scope     *scope
	agg       *Aggregate
	groupKeys []string
	uses      *[]aggUse
}

func (rw *aggRewriter) rewrite(e sqlparser.Expr) (expr.Expr, error) {
	// Aggregate call: bind the argument over the input scope.
	if f, ok := e.(*sqlparser.FuncExpr); ok {
		return rw.rewriteAgg(f)
	}
	// Group expression: bind over input and match group keys.
	bound, err := rw.b.bindExpr(e, rw.scope, nil)
	if err == nil {
		key := expr.Canon(bound)
		for i, gk := range rw.groupKeys {
			if gk == key {
				g := rw.agg.GroupBy[i]
				return &expr.Column{Index: i, Name: g.Name, Kind: g.E.Type()}, nil
			}
		}
	}
	// Otherwise recurse structurally so expressions over aggregates and
	// groups (e.g. SUM(a)/SUM(b)) work.
	switch n := e.(type) {
	case *sqlparser.BinExpr:
		l, err := rw.rewrite(n.L)
		if err != nil {
			return nil, err
		}
		r, err := rw.rewrite(n.R)
		if err != nil {
			return nil, err
		}
		return &expr.Binary{Op: binOp(n.Op), L: l, R: r}, nil
	case *sqlparser.UnExpr:
		inner, err := rw.rewrite(n.E)
		if err != nil {
			return nil, err
		}
		op := expr.OpNeg
		if n.Op == "NOT" {
			op = expr.OpNot
		}
		return &expr.Unary{Op: op, E: inner}, nil
	case *sqlparser.NumLit, *sqlparser.StrLit:
		return rw.b.bindExpr(e, rw.scope, nil)
	default:
		if err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("plan: expression %v is neither a group key nor an aggregate", e)
	}
}

func (rw *aggRewriter) rewriteAgg(f *sqlparser.FuncExpr) (expr.Expr, error) {
	var arg expr.Expr
	if !f.Star {
		bound, err := rw.b.bindExpr(f.Arg, rw.scope, nil)
		if err != nil {
			return nil, err
		}
		arg = bound
	}
	fn, err := aggFuncOf(f.Name)
	if err != nil {
		return nil, err
	}
	spec := AggSpec{Func: fn, Arg: arg}
	key := spec.signature()
	for _, u := range *rw.uses {
		if u.key == key {
			return rw.colFor(u.spec), nil
		}
	}
	spec.Name = "agg_" + strconv.Itoa(len(rw.agg.Aggs))
	rw.agg.Aggs = append(rw.agg.Aggs, spec)
	*rw.uses = append(*rw.uses, aggUse{spec: spec, key: key})
	return rw.colFor(spec), nil
}

func (rw *aggRewriter) colFor(spec AggSpec) expr.Expr {
	for i, s := range rw.agg.Aggs {
		if s.signature() == spec.signature() {
			return &expr.Column{Index: len(rw.agg.GroupBy) + i, Name: s.Name, Kind: s.ResultKind()}
		}
	}
	panic("plan: aggregate spec vanished")
}

func aggFuncOf(name string) (AggFunc, error) {
	switch name {
	case "sum":
		return AggSum, nil
	case "count":
		return AggCount, nil
	case "avg":
		return AggAvg, nil
	case "min":
		return AggMin, nil
	case "max":
		return AggMax, nil
	default:
		return 0, fmt.Errorf("plan: unknown aggregate %q", name)
	}
}

func containsAgg(e sqlparser.Expr) bool {
	switch n := e.(type) {
	case *sqlparser.FuncExpr:
		return true
	case *sqlparser.BinExpr:
		return containsAgg(n.L) || containsAgg(n.R)
	case *sqlparser.UnExpr:
		return containsAgg(n.E)
	default:
		return false
	}
}

// scope resolves column names against the combined FROM schema.
type scope struct {
	sources []fromSource
	fields  []Field
	// byQual maps "alias.col" to the global index.
	byQual map[string]int
	// byName maps unqualified names to indexes; ambiguous names map to -1.
	byName map[string]int
	// sourceOf maps global index to source ordinal.
	sourceOf []int
}

func newScope(sources []fromSource) *scope {
	s := &scope{
		sources: sources,
		byQual:  make(map[string]int),
		byName:  make(map[string]int),
	}
	for si, src := range sources {
		for fi, f := range src.node.Schema() {
			g := src.offset + fi
			s.fields = append(s.fields, f)
			s.sourceOf = append(s.sourceOf, si)
			s.byQual[src.alias+"."+f.Name] = g
			if _, dup := s.byName[f.Name]; dup {
				s.byName[f.Name] = -1
			} else {
				s.byName[f.Name] = g
			}
		}
	}
	return s
}

// resolve returns the global index of a column reference.
func (s *scope) resolve(id *sqlparser.Ident) (int, error) {
	if id.Qual != "" {
		if g, ok := s.byQual[id.Qual+"."+id.Name]; ok {
			return g, nil
		}
		return 0, fmt.Errorf("plan: unknown column %s.%s", id.Qual, id.Name)
	}
	g, ok := s.byName[id.Name]
	if !ok {
		return 0, fmt.Errorf("plan: unknown column %s", id.Name)
	}
	if g == -1 {
		return 0, fmt.Errorf("plan: ambiguous column %s", id.Name)
	}
	return g, nil
}

// sourcesOf lists the distinct FROM sources referenced by an expression.
func (s *scope) sourcesOf(e expr.Expr) []int {
	seen := make(map[int]bool)
	var out []int
	for _, c := range expr.Columns(e) {
		si := s.sourceOf[c]
		if !seen[si] {
			seen[si] = true
			out = append(out, si)
		}
	}
	return out
}

func binOp(op string) expr.Op {
	switch op {
	case "+":
		return expr.OpAdd
	case "-":
		return expr.OpSub
	case "*":
		return expr.OpMul
	case "/":
		return expr.OpDiv
	case "=":
		return expr.OpEq
	case "<>":
		return expr.OpNe
	case "<":
		return expr.OpLt
	case "<=":
		return expr.OpLe
	case ">":
		return expr.OpGt
	case ">=":
		return expr.OpGe
	case "AND":
		return expr.OpAnd
	case "OR":
		return expr.OpOr
	default:
		panic("plan: unknown operator " + op)
	}
}

// bindExpr binds an AST expression over the scope. The extra map, when
// non-nil, overrides identifier resolution (unused today, reserved for
// correlated contexts).
func (b *binder) bindExpr(e sqlparser.Expr, s *scope, _ map[string]int) (expr.Expr, error) {
	switch n := e.(type) {
	case *sqlparser.Ident:
		g, err := s.resolve(n)
		if err != nil {
			return nil, err
		}
		return &expr.Column{Index: g, Name: s.fields[g].Name, Kind: s.fields[g].Kind}, nil
	case *sqlparser.NumLit:
		if n.Float {
			f, err := strconv.ParseFloat(n.Text, 64)
			if err != nil {
				return nil, fmt.Errorf("plan: bad number %q", n.Text)
			}
			return &expr.Const{Val: value.Float(f)}, nil
		}
		i, err := strconv.ParseInt(n.Text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("plan: bad number %q", n.Text)
		}
		return &expr.Const{Val: value.Int(i)}, nil
	case *sqlparser.StrLit:
		return &expr.Const{Val: value.Str(n.Val)}, nil
	case *sqlparser.BinExpr:
		l, err := b.bindExpr(n.L, s, nil)
		if err != nil {
			return nil, err
		}
		r, err := b.bindExpr(n.R, s, nil)
		if err != nil {
			return nil, err
		}
		return &expr.Binary{Op: binOp(n.Op), L: l, R: r}, nil
	case *sqlparser.UnExpr:
		inner, err := b.bindExpr(n.E, s, nil)
		if err != nil {
			return nil, err
		}
		op := expr.OpNeg
		if n.Op == "NOT" {
			op = expr.OpNot
		}
		return &expr.Unary{Op: op, E: inner}, nil
	case *sqlparser.LikeExpr:
		inner, err := b.bindExpr(n.E, s, nil)
		if err != nil {
			return nil, err
		}
		return expr.NewLike(inner, n.Pattern, n.Negate), nil
	case *sqlparser.FuncExpr:
		return nil, fmt.Errorf("plan: aggregate %s not allowed here", strings.ToUpper(n.Name))
	default:
		return nil, fmt.Errorf("plan: unsupported expression %T", e)
	}
}
