// Package plan defines single-query logical plans: immutable operator trees
// over scan, select, project, aggregate and inner equi-join — the operator
// set supported by the paper's shared incremental execution engine — plus
// name binding from parsed SQL and the string signatures used by the
// multi-query optimizer to detect sharable subplans.
package plan

import (
	"fmt"
	"strings"

	"ishare/internal/catalog"
	"ishare/internal/expr"
	"ishare/internal/value"
)

// Field names one output column of an operator.
type Field struct {
	Name string
	Kind value.Kind
}

// Node is a logical plan operator.
type Node interface {
	// Schema lists the operator's output columns.
	Schema() []Field
	// Children returns the input operators, left to right.
	Children() []Node
	// Signature returns the sharing signature of the subtree rooted here.
	// Following the paper (§2.3), two subplans are sharable iff their
	// signatures are equal: same structure and operators, but select
	// predicates and project lists are excluded from the signature.
	Signature() string
	// Describe renders a one-line summary for explain output.
	Describe() string
}

// Scan reads a base table (the table's delta log during incremental
// execution).
type Scan struct {
	Table *catalog.Table
}

// Schema returns the table's columns.
func (s *Scan) Schema() []Field {
	out := make([]Field, len(s.Table.Columns))
	for i, c := range s.Table.Columns {
		out[i] = Field{Name: c.Name, Kind: c.Type}
	}
	return out
}

// Children returns no inputs.
func (s *Scan) Children() []Node { return nil }

// Signature identifies the scanned table.
func (s *Scan) Signature() string { return "scan(" + s.Table.Name + ")" }

// Describe renders the scan.
func (s *Scan) Describe() string { return "Scan " + s.Table.Name }

// Select filters rows by a predicate.
type Select struct {
	Input Node
	Pred  expr.Expr
}

// Schema passes through the input schema.
func (s *Select) Schema() []Field { return s.Input.Schema() }

// Children returns the single input.
func (s *Select) Children() []Node { return []Node{s.Input} }

// Signature passes through to the input: selects are invisible to sharing.
// Two subplans that differ only in select operators (including a select
// present on one side and absent on the other, as in the paper's Q_A/Q_B
// example) are sharable; the multi-query optimizer turns the differing
// predicates into marker selects.
func (s *Select) Signature() string { return s.Input.Signature() }

// Describe renders the predicate.
func (s *Select) Describe() string { return "Select " + expr.Describe(s.Pred) }

// NamedExpr is a projection item.
type NamedExpr struct {
	Name string
	E    expr.Expr
}

// Project computes a list of named expressions.
type Project struct {
	Input Node
	Exprs []NamedExpr
}

// Schema derives fields from the projection list.
func (p *Project) Schema() []Field {
	out := make([]Field, len(p.Exprs))
	for i, ne := range p.Exprs {
		out[i] = Field{Name: ne.Name, Kind: ne.E.Type()}
	}
	return out
}

// Children returns the single input.
func (p *Project) Children() []Node { return []Node{p.Input} }

// Signature excludes the projection list (projects may differ between
// sharable plans; merging unions their expressions).
func (p *Project) Signature() string { return "project[" + p.Input.Signature() + "]" }

// Describe renders the projection names.
func (p *Project) Describe() string {
	names := make([]string, len(p.Exprs))
	for i, ne := range p.Exprs {
		names[i] = ne.Name
	}
	return "Project " + strings.Join(names, ", ")
}

// AggFunc enumerates aggregate functions.
type AggFunc uint8

// Aggregate function constants.
const (
	AggSum AggFunc = iota
	AggCount
	AggAvg
	AggMin
	AggMax
)

// String returns the SQL name of the aggregate function.
func (f AggFunc) String() string {
	switch f {
	case AggSum:
		return "SUM"
	case AggCount:
		return "COUNT"
	case AggAvg:
		return "AVG"
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	default:
		return fmt.Sprintf("AggFunc(%d)", uint8(f))
	}
}

// Incremental reports whether the function maintains results under deletion
// without rescanning state. MIN/MAX must rescan when the current extremum is
// retracted — the paper's canonical non-incrementable case (Q15).
func (f AggFunc) Incremental() bool { return f != AggMin && f != AggMax }

// AggSpec is one aggregate computation.
type AggSpec struct {
	Func AggFunc
	// Arg is the aggregated expression; nil for COUNT(*).
	Arg expr.Expr
	// Name is the output column name.
	Name string
}

// ResultKind returns the output kind of the aggregate.
func (a AggSpec) ResultKind() value.Kind {
	switch a.Func {
	case AggCount:
		return value.KindInt
	case AggAvg:
		return value.KindFloat
	default:
		if a.Arg == nil {
			return value.KindFloat
		}
		if k := a.Arg.Type(); k == value.KindInt {
			return value.KindInt
		}
		return value.KindFloat
	}
}

func (a AggSpec) signature() string {
	arg := "*"
	if a.Arg != nil {
		arg = expr.Canon(a.Arg)
	}
	return a.Func.String() + "(" + arg + ")"
}

// Aggregate groups rows and computes aggregates. The output schema is the
// group-by expressions followed by the aggregate results.
type Aggregate struct {
	Input   Node
	GroupBy []NamedExpr
	Aggs    []AggSpec
}

// Schema returns group-by columns then aggregate columns.
func (a *Aggregate) Schema() []Field {
	out := make([]Field, 0, len(a.GroupBy)+len(a.Aggs))
	for _, g := range a.GroupBy {
		out = append(out, Field{Name: g.Name, Kind: g.E.Type()})
	}
	for _, s := range a.Aggs {
		out = append(out, Field{Name: s.Name, Kind: s.ResultKind()})
	}
	return out
}

// Children returns the single input.
func (a *Aggregate) Children() []Node { return []Node{a.Input} }

// Signature includes group-by expressions and aggregate functions: two
// aggregates are only sharable if they compute the same grouping and
// functions.
func (a *Aggregate) Signature() string {
	groups := make([]string, len(a.GroupBy))
	for i, g := range a.GroupBy {
		groups[i] = expr.Canon(g.E)
	}
	aggs := make([]string, len(a.Aggs))
	for i, s := range a.Aggs {
		aggs[i] = s.signature()
	}
	return "agg{" + strings.Join(groups, ",") + "|" + strings.Join(aggs, ",") + "}[" + a.Input.Signature() + "]"
}

// Describe renders the aggregate.
func (a *Aggregate) Describe() string {
	parts := make([]string, 0, len(a.Aggs))
	for _, s := range a.Aggs {
		parts = append(parts, s.signature())
	}
	return fmt.Sprintf("Aggregate groups=%d %s", len(a.GroupBy), strings.Join(parts, ", "))
}

// Join is an inner equi-join. Keys are column positions in the respective
// child schemas; the output schema is left fields followed by right fields.
type Join struct {
	Left, Right         Node
	LeftKeys, RightKeys []int
}

// Schema concatenates the child schemas.
func (j *Join) Schema() []Field {
	l, r := j.Left.Schema(), j.Right.Schema()
	out := make([]Field, 0, len(l)+len(r))
	out = append(out, l...)
	out = append(out, r...)
	return out
}

// Children returns both inputs.
func (j *Join) Children() []Node { return []Node{j.Left, j.Right} }

// Signature includes the join keys by name so only identical joins share.
func (j *Join) Signature() string {
	keys := make([]string, len(j.LeftKeys))
	for i := range j.LeftKeys {
		keys[i] = fmt.Sprintf("%d=%d", j.LeftKeys[i], j.RightKeys[i])
	}
	return "join{" + strings.Join(keys, ",") + "}[" + j.Left.Signature() + "|" + j.Right.Signature() + "]"
}

// Describe renders the join keys.
func (j *Join) Describe() string {
	ls, rs := j.Left.Schema(), j.Right.Schema()
	keys := make([]string, len(j.LeftKeys))
	for i := range j.LeftKeys {
		keys[i] = ls[j.LeftKeys[i]].Name + "=" + rs[j.RightKeys[i]].Name
	}
	return "Join " + strings.Join(keys, ", ")
}

// Query couples a named plan with its final-work constraint inputs.
type Query struct {
	// Name identifies the query in reports (e.g. "Q15").
	Name string
	// Root is the plan tree.
	Root Node
	// Present carries ORDER BY / LIMIT, applied when results are read.
	Present Presentation
}

// Validate checks operator invariants across the tree: join key arity and
// bounds, expression typing, and projection/aggregate column bounds.
func Validate(n Node) error {
	for _, c := range n.Children() {
		if err := Validate(c); err != nil {
			return err
		}
	}
	width := func(m Node) int { return len(m.Schema()) }
	switch x := n.(type) {
	case *Select:
		if x.Pred == nil {
			return fmt.Errorf("plan: select with nil predicate")
		}
		if x.Pred.Type() != value.KindBool {
			return fmt.Errorf("plan: select predicate is %s, not BOOL", x.Pred.Type())
		}
		if err := checkCols(x.Pred, width(x.Input)); err != nil {
			return err
		}
		return expr.Validate(x.Pred)
	case *Project:
		if len(x.Exprs) == 0 {
			return fmt.Errorf("plan: empty projection")
		}
		for _, ne := range x.Exprs {
			if err := checkCols(ne.E, width(x.Input)); err != nil {
				return err
			}
			if err := expr.Validate(ne.E); err != nil {
				return err
			}
		}
	case *Aggregate:
		for _, g := range x.GroupBy {
			if err := checkCols(g.E, width(x.Input)); err != nil {
				return err
			}
		}
		for _, s := range x.Aggs {
			if s.Arg == nil {
				if s.Func != AggCount {
					return fmt.Errorf("plan: %s requires an argument", s.Func)
				}
				continue
			}
			if err := checkCols(s.Arg, width(x.Input)); err != nil {
				return err
			}
			if s.Func != AggCount && s.Func != AggMin && s.Func != AggMax && !s.Arg.Type().Numeric() {
				return fmt.Errorf("plan: %s over non-numeric %s", s.Func, s.Arg.Type())
			}
		}
	case *Join:
		// Empty key lists denote a cross join (used for scalar-subquery
		// joins); otherwise the key lists must align.
		if len(x.LeftKeys) != len(x.RightKeys) {
			return fmt.Errorf("plan: join needs matching key lists")
		}
		lw, rw := width(x.Left), width(x.Right)
		for i := range x.LeftKeys {
			if x.LeftKeys[i] < 0 || x.LeftKeys[i] >= lw {
				return fmt.Errorf("plan: join left key %d out of range", x.LeftKeys[i])
			}
			if x.RightKeys[i] < 0 || x.RightKeys[i] >= rw {
				return fmt.Errorf("plan: join right key %d out of range", x.RightKeys[i])
			}
		}
	}
	return nil
}

func checkCols(e expr.Expr, width int) error {
	for _, c := range expr.Columns(e) {
		if c < 0 || c >= width {
			return fmt.Errorf("plan: column index %d out of range (width %d)", c, width)
		}
	}
	return nil
}

// Explain renders the tree with indentation, one operator per line.
func Explain(n Node) string {
	var b strings.Builder
	explain(&b, n, 0)
	return b.String()
}

func explain(b *strings.Builder, n Node, depth int) {
	b.WriteString(strings.Repeat("  ", depth))
	b.WriteString(n.Describe())
	b.WriteByte('\n')
	for _, c := range n.Children() {
		explain(b, c, depth+1)
	}
}

// Operators counts the operators in the tree.
func Operators(n Node) int {
	total := 1
	for _, c := range n.Children() {
		total += Operators(c)
	}
	return total
}

// Blocking reports whether the operator materializes all input before
// producing final results in batch execution. Aggregates are the blocking
// operators used by NoShare-Nonuniform's split points.
func Blocking(n Node) bool {
	_, ok := n.(*Aggregate)
	return ok
}
