package plan

import (
	"fmt"
	"sort"

	"ishare/internal/catalog"
	"ishare/internal/sqlparser"
	"ishare/internal/value"
)

// OrderSpec is one presentation ordering key over the query's output
// columns.
type OrderSpec struct {
	// Col is the output column position.
	Col int
	// Desc inverts the ordering.
	Desc bool
}

// Presentation captures ORDER BY / LIMIT. They are presentation-only: the
// engine maintains the unordered result incrementally (sorting is not
// usefully incremental) and the ordering is applied when results are read.
type Presentation struct {
	OrderBy []OrderSpec
	// Limit caps presented rows; negative means no limit.
	Limit int
}

// BindQuery binds a parsed statement into a named query with presentation.
func BindQuery(name string, stmt *sqlparser.SelectStmt, cat *catalog.Catalog) (Query, error) {
	root, err := Bind(stmt, cat)
	if err != nil {
		return Query{}, err
	}
	q := Query{Name: name, Root: root, Present: Presentation{Limit: stmt.Limit}}
	schema := root.Schema()
	for _, item := range stmt.OrderBy {
		spec := OrderSpec{Desc: item.Desc}
		switch e := item.E.(type) {
		case *sqlparser.NumLit:
			// Positional: ORDER BY 2.
			if e.Float {
				return Query{}, fmt.Errorf("plan: ORDER BY position must be an integer")
			}
			pos := 0
			for _, ch := range e.Text {
				pos = pos*10 + int(ch-'0')
			}
			if pos < 1 || pos > len(schema) {
				return Query{}, fmt.Errorf("plan: ORDER BY position %d out of range", pos)
			}
			spec.Col = pos - 1
		case *sqlparser.Ident:
			idx := -1
			for i, f := range schema {
				if f.Name == e.Name {
					idx = i
					break
				}
			}
			if idx < 0 {
				return Query{}, fmt.Errorf("plan: ORDER BY column %q is not in the select list", e.Name)
			}
			spec.Col = idx
		default:
			return Query{}, fmt.Errorf("plan: ORDER BY supports output columns and positions only")
		}
		q.Present.OrderBy = append(q.Present.OrderBy, spec)
	}
	return q, nil
}

// ParseAndBindQuery parses SQL and binds it with presentation.
func ParseAndBindQuery(name, sql string, cat *catalog.Catalog) (Query, error) {
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		return Query{}, err
	}
	return BindQuery(name, stmt, cat)
}

// Apply sorts and truncates materialized result rows per the presentation.
// The input slice is sorted in place and returned (possibly shortened).
func (p Presentation) Apply(rows []value.Row) []value.Row {
	if len(p.OrderBy) > 0 {
		sort.SliceStable(rows, func(i, j int) bool {
			for _, s := range p.OrderBy {
				c := value.Compare(rows[i][s.Col], rows[j][s.Col])
				if s.Desc {
					c = -c
				}
				if c != 0 {
					return c < 0
				}
			}
			return false
		})
	}
	if p.Limit >= 0 && len(rows) > p.Limit {
		rows = rows[:p.Limit]
	}
	return rows
}
