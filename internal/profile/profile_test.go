package profile

import (
	"math"
	"testing"
)

func TestNewRejectsInvalidConfig(t *testing.T) {
	cases := []Config{
		{},                                   // no subplans
		{Subplans: 0},                        // explicit zero
		{Subplans: 2, Modeled: []float64{1}}, // baseline length mismatch
		{Subplans: 1, Bound: 0.5},            // bound ≤ 1
		{Subplans: 1, Bound: 1},              // bound ≤ 1
		{Subplans: 1, Alpha: 1.5},            // alpha outside (0, 1]
		{Subplans: 1, Alpha: -0.1},
	}
	for i, cfg := range cases {
		if p := New(cfg); p != nil {
			t.Errorf("case %d: New(%+v) accepted an invalid config", i, cfg)
		}
	}
	if p := New(Config{Subplans: 3}); p == nil {
		t.Fatal("New rejected a minimal valid config")
	}
}

func TestDriftEWMAAndAlerts(t *testing.T) {
	p := New(Config{Subplans: 2, Modeled: []float64{100, 100}, Alpha: 0.5, Bound: 2})

	// Window 0: ratio exactly 1 → EWMA seeds at 1, no alert.
	p.Observe(0, 100, 7, 3)
	samples, alerts := p.FlushWindow(0)
	if len(alerts) != 0 {
		t.Fatalf("window 0: unexpected alerts %+v", alerts)
	}
	if len(samples) != 1 {
		t.Fatalf("window 0: %d samples, want 1", len(samples))
	}
	s := samples[0]
	if s.Window != 0 || s.Subplan != 0 || s.Modeled != 100 || s.Work != 100 || s.WallNS != 7 || s.Firings != 1 || s.Batches != 3 {
		t.Errorf("window 0 sample = %+v", s)
	}
	if got := p.Drift(0); got != 1 {
		t.Errorf("drift after window 0 = %v, want 1", got)
	}

	// Window 1: ratio 3 → EWMA 0.5·3 + 0.5·1 = 2, not strictly above the
	// bound yet.
	p.Observe(0, 300, 0, 0)
	if _, alerts := p.FlushWindow(1); len(alerts) != 0 {
		t.Fatalf("window 1: unexpected alerts %+v", alerts)
	}
	if got := p.Drift(0); got != 2 {
		t.Errorf("drift after window 1 = %v, want 2", got)
	}

	// Window 2: ratio 3 again → EWMA 2.5 > 2 → alert.
	p.Observe(0, 300, 0, 0)
	_, alerts = p.FlushWindow(2)
	if len(alerts) != 1 {
		t.Fatalf("window 2: alerts = %+v, want exactly one", alerts)
	}
	a := alerts[0]
	if a.Window != 2 || a.Subplan != 0 || a.Drift != 2.5 || a.Modeled != 100 || a.Work != 300 {
		t.Errorf("alert = %+v", a)
	}
	if got := p.Alerts(); len(got) != 1 || got[0] != a {
		t.Errorf("Alerts() = %+v", got)
	}

	// Subplan 1 never fired: no drift, no samples.
	if got := p.Drift(1); got != 0 {
		t.Errorf("unfired subplan drift = %v, want 0", got)
	}
}

func TestUndershootAlert(t *testing.T) {
	p := New(Config{Subplans: 1, Modeled: []float64{100}, Alpha: 1, Bound: 2})
	p.Observe(0, 10, 0, 0) // ratio 0.1 < 1/2
	if _, alerts := p.FlushWindow(0); len(alerts) != 1 {
		t.Fatalf("undershoot did not alert: %+v", alerts)
	}
}

func TestNoBaselineNoDrift(t *testing.T) {
	p := New(Config{Subplans: 1})
	p.Observe(0, 500, 0, 0)
	samples, alerts := p.FlushWindow(0)
	if len(alerts) != 0 {
		t.Fatalf("alerts without a baseline: %+v", alerts)
	}
	if len(samples) != 1 || samples[0].Modeled != 0 || samples[0].Drift != 0 {
		t.Fatalf("samples = %+v", samples)
	}
	p.SetModeled([]float64{500})
	p.Observe(0, 500, 0, 0)
	if _, alerts := p.FlushWindow(1); len(alerts) != 0 {
		t.Fatalf("calibrated window alerted: %+v", alerts)
	}
	if got := p.Drift(0); got != 1 {
		t.Errorf("drift = %v, want 1", got)
	}
}

func TestModeledAtOverridesModeled(t *testing.T) {
	p := New(Config{
		Subplans:  1,
		Modeled:   []float64{1}, // would make ratio 100
		ModeledAt: func(window, subplan int) float64 { return 100 },
	})
	p.Observe(0, 100, 0, 0)
	if _, alerts := p.FlushWindow(0); len(alerts) != 0 {
		t.Fatalf("ModeledAt did not win over Modeled: %+v", alerts)
	}
}

func TestRingEviction(t *testing.T) {
	p := New(Config{Subplans: 1, Capacity: 4})
	for w := 0; w < 6; w++ {
		p.Observe(0, int64(w+1), 0, 0)
		p.FlushWindow(w)
	}
	if got := p.Recorded(); got != 6 {
		t.Errorf("Recorded() = %d, want 6", got)
	}
	samples := p.Samples()
	if len(samples) != 4 {
		t.Fatalf("Samples() kept %d, want 4", len(samples))
	}
	for i, s := range samples {
		if s.Window != i+2 {
			t.Errorf("sample %d is window %d, want %d (oldest evicted, chronological order)", i, s.Window, i+2)
		}
	}
}

func TestFlushReturnsOnlyFiredSubplans(t *testing.T) {
	p := New(Config{Subplans: 3})
	p.Observe(0, 10, 0, 0)
	p.Observe(2, 30, 0, 0)
	samples, _ := p.FlushWindow(0)
	if len(samples) != 2 || samples[0].Subplan != 0 || samples[1].Subplan != 2 {
		t.Fatalf("samples = %+v", samples)
	}
	// Accumulators reset: a later flush records nothing.
	if samples, _ := p.FlushWindow(1); len(samples) != 0 {
		t.Fatalf("empty window produced samples: %+v", samples)
	}
}

func TestGraftPreservesSurvivingEWMA(t *testing.T) {
	p := New(Config{Subplans: 3, Modeled: []float64{100, 100, 100}, Alpha: 1})
	for sub := 0; sub < 3; sub++ {
		p.Observe(sub, int64(100*(sub+1)), 0, 0)
	}
	p.FlushWindow(0)

	p.Graft(2, nil) // shrink: subplan 2 dropped
	if got := p.Subplans(); got != 2 {
		t.Fatalf("Subplans() after shrink = %d", got)
	}
	if d := p.Drifts(); len(d) != 2 || d[0] != 1 || d[1] != 2 {
		t.Fatalf("Drifts() after shrink = %v", d)
	}

	p.Graft(4, []float64{100, 100, 100, 100}) // grow with a fresh baseline
	d := p.Drifts()
	if len(d) != 4 || d[0] != 1 || d[1] != 2 || d[2] != 0 || d[3] != 0 {
		t.Fatalf("Drifts() after grow = %v", d)
	}
	// New ids start unobserved; survivors keep folding into their EWMA.
	p.Observe(3, 100, 0, 0)
	if _, alerts := p.FlushWindow(1); len(alerts) != 0 {
		t.Fatalf("fresh id alerted on a calibrated window: %+v", alerts)
	}
	if got := p.Drift(3); got != 1 {
		t.Errorf("fresh id drift = %v, want 1", got)
	}
}

func TestNilProfilerNoOps(t *testing.T) {
	var p *Profiler
	if p.Enabled() {
		t.Error("nil profiler reports enabled")
	}
	p.Observe(0, 1, 2, 3)
	if s, a := p.FlushWindow(0); s != nil || a != nil {
		t.Error("nil FlushWindow returned data")
	}
	if p.Samples() != nil || p.Alerts() != nil || p.Drifts() != nil {
		t.Error("nil accessors returned data")
	}
	if p.Drift(0) != 0 || p.Subplans() != 0 || p.Recorded() != 0 {
		t.Error("nil scalars non-zero")
	}
	p.SetModeled([]float64{1})
	p.Graft(2, nil)

	if allocs := testing.AllocsPerRun(100, func() {
		p.Observe(0, 1, 2, 3)
		p.FlushWindow(0)
		_ = p.Drift(0)
	}); allocs != 0 {
		t.Errorf("nil profiler allocates %v per run, want 0", allocs)
	}
}

func TestDriftNaNGuard(t *testing.T) {
	p := New(Config{Subplans: 1, Modeled: []float64{100}})
	if d := p.Drift(0); d != 0 || math.IsNaN(d) {
		t.Errorf("unobserved drift = %v, want 0", d)
	}
	if d := p.Drift(99); d != 0 {
		t.Errorf("out-of-range drift = %v, want 0", d)
	}
}
