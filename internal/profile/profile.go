// Package profile is the closed-loop measurement substrate between the
// scheduler runtime and the cost model: it collects, per subplan per trigger
// window, an execution profile {modeled baseline work, observed modeled
// work, measured wall time, firings, vectorized batch count} into a bounded
// ring, maintains an observed/modeled drift EWMA per subplan, and raises an
// Alert whenever a subplan's drift leaves the configured band. ROADMAP item
// 5 (online recalibration and drift-triggered pace re-search) consumes this
// layer; today the profiles feed the event log, the statusz endpoint and the
// ishare facade.
//
// Determinism: Observe and FlushWindow are driven from the scheduler's
// canonical accounting loop (never from worker goroutines), and drift is a
// pure function of modeled work counts — the observed side is the engine's
// deterministic Work units, not wall time — so profiles, EWMAs and alerts
// are byte-identical at any worker count and reproducible on a VirtualClock.
// Measured wall nanoseconds ride along as an extra field; they are the one
// nondeterministic column and are never part of drift or of golden logs.
//
// A nil *Profiler is the disabled profiler: every method no-ops behind a
// single pointer check and allocates nothing, following the tracer's
// zero-cost-when-disabled discipline.
package profile

import "math"

// Sample is one subplan's profile for one closed trigger window.
type Sample struct {
	// Window is the trigger window index (scheduler numbering).
	Window int `json:"window"`
	// Subplan is the subplan id within the plan revision.
	Subplan int `json:"subplan"`
	// Modeled is the baseline work the cost model predicts for this
	// subplan in one window (0 when no baseline is configured — drift is
	// not updated from such windows).
	Modeled float64 `json:"modeled"`
	// Work is the observed modeled work: the engine's deterministic Work
	// units summed over the window's firings.
	Work int64 `json:"work"`
	// WallNS is the measured wall time of the window's firings in
	// nanoseconds, captured on the executing workers. Nondeterministic;
	// informational only.
	WallNS int64 `json:"wall_ns"`
	// Firings counts the incremental executions in the window.
	Firings int `json:"firings"`
	// Batches counts the vectorized chunks the firings processed.
	Batches int64 `json:"batches"`
	// Drift is the subplan's observed/modeled EWMA after this window
	// (0 until a window with a positive baseline has been observed).
	Drift float64 `json:"drift"`
}

// Alert is one drift-detector event: a subplan whose observed/modeled EWMA
// left [1/Bound, Bound] at a window close.
type Alert struct {
	Window  int `json:"window"`
	Subplan int `json:"subplan"`
	// Drift is the EWMA that tripped the bound.
	Drift float64 `json:"drift"`
	// Modeled and Work are the tripping window's baseline and observation.
	Modeled float64 `json:"modeled"`
	Work    int64   `json:"work"`
}

// Config parameterizes a Profiler.
type Config struct {
	// Subplans is the plan's subplan count (required, ≥ 1).
	Subplans int
	// Modeled is the per-subplan baseline work per window — typically the
	// cost model's Eval.SubTotal under the scheduled pace vector. May be
	// nil (no drift detection until SetModeled).
	Modeled []float64
	// ModeledAt, when non-nil, overrides Modeled with a per-window
	// baseline — e.g. a matrix measured by a prior calibration run.
	ModeledAt func(window, subplan int) float64
	// Bound is the drift band: an alert fires when a subplan's EWMA
	// exceeds Bound or falls below 1/Bound. Defaults to 2. Bounds ≤ 1
	// are rejected by New.
	Bound float64
	// Alpha is the EWMA weight of the newest window's ratio, in (0, 1].
	// Defaults to 0.5; 1 tracks the latest window only.
	Alpha float64
	// Capacity bounds the profile ring in samples; defaults to 512.
	Capacity int
}

// Profiler accumulates per-subplan window profiles. All methods must be
// called from one goroutine (the scheduler's canonical accounting loop);
// nil receivers no-op.
type Profiler struct {
	cfg Config

	// Current-window accumulators, reset at each flush.
	work    []int64
	wall    []int64
	firings []int
	batches []int64

	// ewma is the per-subplan drift EWMA; NaN marks "no observation with a
	// baseline yet".
	ewma []float64

	ring  []Sample // circular, rlen valid entries ending before rpos
	rpos  int
	rlen  int
	total int // samples ever recorded (diagnostics)

	alerts []Alert // every alert raised, in order
}

// New builds a profiler. Subplans must be ≥ 1; a Modeled slice, when given,
// must have one entry per subplan.
func New(cfg Config) *Profiler {
	if cfg.Subplans < 1 {
		return nil
	}
	if cfg.Modeled != nil && len(cfg.Modeled) != cfg.Subplans {
		return nil
	}
	if cfg.Bound == 0 {
		cfg.Bound = 2
	}
	if cfg.Bound <= 1 {
		return nil
	}
	if cfg.Alpha == 0 {
		cfg.Alpha = 0.5
	}
	if cfg.Alpha < 0 || cfg.Alpha > 1 {
		return nil
	}
	if cfg.Capacity <= 0 {
		cfg.Capacity = 512
	}
	p := &Profiler{cfg: cfg, ring: make([]Sample, 0, cfg.Capacity)}
	p.size(cfg.Subplans)
	return p
}

// size (re)allocates the per-subplan state for n subplans, preserving the
// EWMA of subplan ids that survive (plan grafts keep subplan ids
// slot-stable, so a surviving id is the same logical subplan).
func (p *Profiler) size(n int) {
	grow := func(s []int64) []int64 {
		out := make([]int64, n)
		copy(out, s)
		return out
	}
	p.work = grow(p.work)
	p.wall = grow(p.wall)
	p.batches = grow(p.batches)
	f := make([]int, n)
	copy(f, p.firings)
	p.firings = f
	e := make([]float64, n)
	for i := range e {
		e[i] = math.NaN()
	}
	copy(e, p.ewma)
	p.ewma = e
}

// Enabled reports whether the profiler records anything.
func (p *Profiler) Enabled() bool { return p != nil }

// Subplans returns the profiled subplan count (0 when disabled).
func (p *Profiler) Subplans() int {
	if p == nil {
		return 0
	}
	return p.cfg.Subplans
}

// Observe accumulates one firing into the current window: the execution's
// modeled work, its measured wall nanoseconds and the vectorized chunks it
// processed. Called once per firing from the canonical accounting loop.
func (p *Profiler) Observe(subplan int, work, wallNS, batches int64) {
	if p == nil || subplan < 0 || subplan >= len(p.work) {
		return
	}
	p.work[subplan] += work
	p.wall[subplan] += wallNS
	p.batches[subplan] += batches
	p.firings[subplan]++
}

// modeledAt resolves the baseline for one subplan in one window.
func (p *Profiler) modeledAt(window, subplan int) float64 {
	if p.cfg.ModeledAt != nil {
		return p.cfg.ModeledAt(window, subplan)
	}
	if p.cfg.Modeled != nil {
		return p.cfg.Modeled[subplan]
	}
	return 0
}

// FlushWindow closes the window: for every subplan that fired, it records a
// Sample into the ring and — when the window has a positive baseline —
// folds the window's observed/modeled ratio into the subplan's drift EWMA,
// raising an Alert if the EWMA leaves [1/Bound, Bound]. It returns the
// window's samples (valid until the next flush overwrites the ring) and the
// alerts raised. Nil receivers return nothing.
func (p *Profiler) FlushWindow(window int) ([]Sample, []Alert) {
	if p == nil {
		return nil, nil
	}
	firstAlert := len(p.alerts)
	var first, n int = -1, 0
	for sub := range p.work {
		if p.firings[sub] == 0 {
			continue
		}
		modeled := p.modeledAt(window, sub)
		if modeled > 0 {
			ratio := float64(p.work[sub]) / modeled
			if math.IsNaN(p.ewma[sub]) {
				p.ewma[sub] = ratio
			} else {
				p.ewma[sub] = p.cfg.Alpha*ratio + (1-p.cfg.Alpha)*p.ewma[sub]
			}
			if e := p.ewma[sub]; e > p.cfg.Bound || e < 1/p.cfg.Bound {
				p.alerts = append(p.alerts, Alert{
					Window: window, Subplan: sub,
					Drift: e, Modeled: modeled, Work: p.work[sub],
				})
			}
		}
		s := Sample{
			Window:  window,
			Subplan: sub,
			Modeled: modeled,
			Work:    p.work[sub],
			WallNS:  p.wall[sub],
			Firings: p.firings[sub],
			Batches: p.batches[sub],
			Drift:   p.Drift(sub),
		}
		at := p.push(s)
		if first < 0 {
			first = at
		}
		n++
		p.work[sub], p.wall[sub], p.batches[sub], p.firings[sub] = 0, 0, 0, 0
	}
	var out []Sample
	if n > 0 {
		// The window's samples were pushed contiguously; re-slice them out
		// of the ring (they may wrap, so copy only in that rare case).
		if first+n <= len(p.ring) {
			out = p.ring[first : first+n]
		} else {
			out = make([]Sample, 0, n)
			out = append(out, p.ring[first:]...)
			out = append(out, p.ring[:n-(len(p.ring)-first)]...)
		}
	}
	return out, p.alerts[firstAlert:]
}

// push appends one sample to the ring, overwriting the oldest entry when
// full, and returns the index it landed at.
func (p *Profiler) push(s Sample) int {
	p.total++
	if len(p.ring) < cap(p.ring) {
		p.ring = append(p.ring, s)
		p.rlen = len(p.ring)
		p.rpos = len(p.ring) % cap(p.ring)
		return len(p.ring) - 1
	}
	at := p.rpos
	p.ring[at] = s
	p.rpos = (p.rpos + 1) % len(p.ring)
	if p.rlen < len(p.ring) {
		p.rlen++
	}
	return at
}

// Samples returns the retained profiles in chronological order (oldest
// first). The slice is freshly allocated.
func (p *Profiler) Samples() []Sample {
	if p == nil || p.rlen == 0 {
		return nil
	}
	out := make([]Sample, 0, p.rlen)
	if len(p.ring) < cap(p.ring) || p.rlen < len(p.ring) {
		// Not yet wrapped.
		return append(out, p.ring[:p.rlen]...)
	}
	out = append(out, p.ring[p.rpos:]...)
	out = append(out, p.ring[:p.rpos]...)
	return out
}

// Recorded returns how many samples were ever recorded, including those the
// bounded ring has since evicted.
func (p *Profiler) Recorded() int {
	if p == nil {
		return 0
	}
	return p.total
}

// Drift returns a subplan's current observed/modeled EWMA, or 0 before any
// window with a positive baseline has been observed.
func (p *Profiler) Drift(subplan int) float64 {
	if p == nil || subplan < 0 || subplan >= len(p.ewma) || math.IsNaN(p.ewma[subplan]) {
		return 0
	}
	return p.ewma[subplan]
}

// Drifts returns every subplan's drift EWMA (0 for unobserved subplans).
func (p *Profiler) Drifts() []float64 {
	if p == nil {
		return nil
	}
	out := make([]float64, p.cfg.Subplans)
	for i := range out {
		out[i] = p.Drift(i)
	}
	return out
}

// Alerts returns every alert raised so far, in order.
func (p *Profiler) Alerts() []Alert {
	if p == nil {
		return nil
	}
	return append([]Alert(nil), p.alerts...)
}

// SetModeled replaces the static per-subplan baseline — the closed loop's
// recalibration entry point, also used after a degradation or graft changes
// the pace vector. The slice length must match the current subplan count;
// mismatches are ignored. ModeledAt, when configured, still wins.
func (p *Profiler) SetModeled(modeled []float64) {
	if p == nil || (modeled != nil && len(modeled) != p.cfg.Subplans) {
		return
	}
	p.cfg.Modeled = append([]float64(nil), modeled...)
}

// Rebase installs a new per-subplan baseline and resets every drift EWMA to
// unobserved — the recalibration entry point. SetModeled alone would keep
// folding post-recalibration ratios into an EWMA still dominated by the
// drifted history, re-raising alerts for windows while the average decays;
// after a recalibration the corrected model is the new normal, so drift
// tracking restarts from scratch against it. ModeledAt, when configured,
// still wins (matrix-driven tests pin their own baselines).
func (p *Profiler) Rebase(modeled []float64) {
	if p == nil || (modeled != nil && len(modeled) != p.cfg.Subplans) {
		return
	}
	p.cfg.Modeled = append([]float64(nil), modeled...)
	for i := range p.ewma {
		p.ewma[i] = math.NaN()
	}
}

// Graft resizes the profiler to a new plan revision with n subplans and the
// given baseline (nil disables drift updates until SetModeled). Surviving
// subplan ids keep their drift EWMA — graft keeps ids slot-stable — while
// ids beyond the new count are dropped and brand-new ids start unobserved.
// Pending window accumulators are discarded: grafts happen between windows,
// when they are empty.
func (p *Profiler) Graft(n int, modeled []float64) {
	if p == nil || n < 1 {
		return
	}
	if modeled != nil && len(modeled) != n {
		modeled = nil
	}
	if n < p.cfg.Subplans {
		p.work = p.work[:n]
		p.wall = p.wall[:n]
		p.batches = p.batches[:n]
		p.firings = p.firings[:n]
		p.ewma = p.ewma[:n]
	}
	p.cfg.Subplans = n
	p.size(n)
	p.cfg.Modeled = modeled
}
