package hashtab

import (
	"math/rand"
	"testing"
)

// TestTableMatchesMap drives the open-addressing table and a map reference
// through identical mixed insert/overwrite/delete/probe streams. Hashes are
// drawn from a small clustered domain so probe chains overlap and deletions
// exercise the backward shift inside dense clusters.
func TestTableMatchesMap(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var tab Table
		ref := make(map[uint64]int32)
		// Clustered hash domain: a few base values plus small offsets, so
		// many keys land in adjacent slots at every table size.
		randHash := func() uint64 {
			base := uint64(rng.Intn(4)) << 32
			return base + uint64(rng.Intn(64))
		}
		for step := 0; step < 5000; step++ {
			h := randHash()
			switch rng.Intn(4) {
			case 0, 1: // insert / overwrite
				v := int32(rng.Intn(1000))
				tab.Put(h, v)
				ref[h] = v
			case 2: // delete
				got := tab.Delete(h)
				_, want := ref[h]
				if got != want {
					t.Fatalf("seed %d step %d: Delete(%#x) = %v, want %v", seed, step, h, got, want)
				}
				delete(ref, h)
			case 3: // probe
				got, ok := tab.Get(h)
				want, wantOK := ref[h]
				if ok != wantOK || (ok && got != want) {
					t.Fatalf("seed %d step %d: Get(%#x) = (%d,%v), want (%d,%v)", seed, step, h, got, ok, want, wantOK)
				}
			}
			if tab.Len() != len(ref) {
				t.Fatalf("seed %d step %d: Len = %d, want %d", seed, step, tab.Len(), len(ref))
			}
		}
		// Every surviving key must still be reachable (no probe chain was
		// broken by a backward shift).
		for h, want := range ref {
			got, ok := tab.Get(h)
			if !ok || got != want {
				t.Fatalf("seed %d: final Get(%#x) = (%d,%v), want (%d,true)", seed, h, got, ok, want)
			}
		}
	}
}

// TestTableAdversarialCluster fills one dense cluster and deletes from its
// middle, the worst case for backward-shift deletion.
func TestTableAdversarialCluster(t *testing.T) {
	var tab Table
	const n = 64
	for i := uint64(0); i < n; i++ {
		tab.Put(i, int32(i))
	}
	// Delete every third entry, then every remaining even one.
	for i := uint64(0); i < n; i += 3 {
		if !tab.Delete(i) {
			t.Fatalf("Delete(%d) missed", i)
		}
	}
	for i := uint64(0); i < n; i++ {
		got, ok := tab.Get(i)
		if i%3 == 0 {
			if ok {
				t.Fatalf("Get(%d) found deleted entry", i)
			}
			continue
		}
		if !ok || got != int32(i) {
			t.Fatalf("Get(%d) = (%d,%v), want (%d,true)", i, got, ok, i)
		}
	}
}

func TestArena(t *testing.T) {
	type entry struct {
		k, v int
	}
	var a Arena[entry]
	refs := make([]int32, 0, 1000)
	for i := 0; i < 1000; i++ {
		r := a.Alloc()
		e := a.At(r)
		if e.k != 0 || e.v != 0 {
			t.Fatalf("Alloc returned non-zero entry %+v", *e)
		}
		e.k, e.v = i, i*2
		refs = append(refs, r)
	}
	if a.Len() != 1000 {
		t.Fatalf("Len = %d", a.Len())
	}
	// Pointers must stay stable across growth.
	for i, r := range refs {
		if e := a.At(r); e.k != i || e.v != i*2 {
			t.Fatalf("entry %d corrupted: %+v", i, *e)
		}
	}
	// Free half, reallocate, and confirm recycling zeroes slots.
	for i := 0; i < 500; i++ {
		a.Free(refs[i])
	}
	if a.Len() != 500 {
		t.Fatalf("Len after frees = %d", a.Len())
	}
	for i := 0; i < 500; i++ {
		r := a.Alloc()
		if e := a.At(r); e.k != 0 || e.v != 0 {
			t.Fatalf("recycled entry not zeroed: %+v", *e)
		}
	}
	if a.Len() != 1000 {
		t.Fatalf("Len after realloc = %d", a.Len())
	}
}

// TestTableGetOnEmpty covers the unallocated fast path.
func TestTableGetOnEmpty(t *testing.T) {
	var tab Table
	if _, ok := tab.Get(42); ok {
		t.Fatal("Get on empty table found something")
	}
	if tab.Delete(42) {
		t.Fatal("Delete on empty table reported success")
	}
}
