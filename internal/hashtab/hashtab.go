// Package hashtab provides the executor's state-layer building blocks: an
// open-addressing hash table over precomputed 64-bit hashes and a
// slab-backed arena with stable pointers. Operators hash a key once (with
// value.Hasher), keep the hash, and index their arena-allocated entries
// through the table — no per-probe re-hashing, no per-entry heap
// allocation, and no map runtime overhead on the hot path.
package hashtab

// Table maps distinct 64-bit hashes to int32 references using linear
// probing. Deletion is tombstone-free: Knuth's backward-shift algorithm
// (TAOCP 6.4, Algorithm R) restores every surviving entry to a reachable
// slot, so probe sequences never lengthen as entries churn — important for
// join build sides fed delete-heavy streams.
//
// The table stores one reference per distinct hash. Callers whose keys can
// collide on the full 64 bits (different group keys, different join keys)
// chain same-hash entries through their arena and disambiguate by comparing
// the actual keys.
type Table struct {
	hashes []uint64
	refs   []int32
	full   []bool
	mask   uint64
	n      int
}

// minCap is the initial slot count of a non-empty table.
const minCap = 16

// Len returns the number of stored hashes.
func (t *Table) Len() int { return t.n }

// Get returns the reference stored for hash h.
func (t *Table) Get(h uint64) (int32, bool) {
	if t.n == 0 {
		return 0, false
	}
	i := h & t.mask
	for t.full[i] {
		if t.hashes[i] == h {
			return t.refs[i], true
		}
		i = (i + 1) & t.mask
	}
	return 0, false
}

// GetBatch looks up hashes[i] for every selected index in one pass, storing
// the found reference (or -1) at refs[i]. Entries of refs outside sel are
// left untouched. This is the probe side of vectorized join execution: a
// chunk's key hashes are resolved against the build side together, keeping
// the table's slot arrays hot instead of interleaving lookups with per-tuple
// work.
func (t *Table) GetBatch(hashes []uint64, sel []int32, refs []int32) {
	if t.n == 0 {
		for _, i := range sel {
			refs[i] = -1
		}
		return
	}
	for _, i := range sel {
		h := hashes[i]
		refs[i] = -1
		for j := h & t.mask; t.full[j]; j = (j + 1) & t.mask {
			if t.hashes[j] == h {
				refs[i] = t.refs[j]
				break
			}
		}
	}
}

// Put stores ref for hash h, replacing any existing reference.
func (t *Table) Put(h uint64, ref int32) {
	if len(t.hashes) == 0 || t.n >= len(t.hashes)*3/4 {
		t.grow()
	}
	i := h & t.mask
	for t.full[i] {
		if t.hashes[i] == h {
			t.refs[i] = ref
			return
		}
		i = (i + 1) & t.mask
	}
	t.hashes[i], t.refs[i], t.full[i] = h, ref, true
	t.n++
}

// Delete removes hash h, reporting whether it was present. Entries
// displaced past the vacated slot are shifted back so no tombstone is left
// behind.
func (t *Table) Delete(h uint64) bool {
	if t.n == 0 {
		return false
	}
	i := h & t.mask
	for t.full[i] {
		if t.hashes[i] == h {
			t.shiftBack(i)
			t.n--
			return true
		}
		i = (i + 1) & t.mask
	}
	return false
}

// shiftBack vacates slot j, moving later cluster members whose home slot
// precedes the hole back into it until the cluster's end.
func (t *Table) shiftBack(j uint64) {
	i := j
	for {
		i = (i + 1) & t.mask
		if !t.full[i] {
			t.full[j] = false
			return
		}
		home := t.hashes[i] & t.mask
		// Skip entries whose home lies cyclically in (j, i] — they are
		// already at or after their home and must not move before it.
		if (i-home)&t.mask < (i-j)&t.mask {
			continue
		}
		t.hashes[j], t.refs[j] = t.hashes[i], t.refs[i]
		j = i
	}
}

// grow doubles the slot count and reinserts all entries.
func (t *Table) grow() {
	oldHashes, oldRefs, oldFull := t.hashes, t.refs, t.full
	newCap := minCap
	if len(oldHashes) > 0 {
		newCap = len(oldHashes) * 2
	}
	t.hashes = make([]uint64, newCap)
	t.refs = make([]int32, newCap)
	t.full = make([]bool, newCap)
	t.mask = uint64(newCap - 1)
	t.n = 0
	for i, f := range oldFull {
		if f {
			t.Put(oldHashes[i], oldRefs[i])
		}
	}
}

// slabBits sizes arena slabs at 256 entries: slabs are never reallocated,
// so pointers returned by At remain valid for the arena's lifetime.
const slabBits = 8
const slabSize = 1 << slabBits

// Arena is a slab-backed allocator with an int32 reference space and a free
// list. Alloc returns zeroed entries; Free zeroes the entry (dropping any
// heap references it held) and recycles its slot. Pointers obtained via At
// stay valid across later Allocs — slabs grow by adding new slabs, never by
// moving old ones.
type Arena[T any] struct {
	slabs [][]T
	free  []int32
	next  int32
	n     int
}

// Len returns the number of live entries.
func (a *Arena[T]) Len() int { return a.n }

// Alloc returns a reference to a zeroed entry.
func (a *Arena[T]) Alloc() int32 {
	a.n++
	if k := len(a.free); k > 0 {
		ref := a.free[k-1]
		a.free = a.free[:k-1]
		return ref
	}
	ref := a.next
	a.next++
	if int(ref)>>slabBits == len(a.slabs) {
		a.slabs = append(a.slabs, make([]T, slabSize))
	}
	return ref
}

// At returns the entry for ref. The pointer stays valid until the entry is
// freed.
func (a *Arena[T]) At(ref int32) *T {
	return &a.slabs[ref>>slabBits][ref&(slabSize-1)]
}

// Free zeroes the entry and returns its slot to the free list.
func (a *Arena[T]) Free(ref int32) {
	var zero T
	*a.At(ref) = zero
	a.free = append(a.free, ref)
	a.n--
}
