package expr

import (
	"testing"

	"ishare/internal/value"
)

func TestCanonDistinguishesColumnsBySameName(t *testing.T) {
	a := &Binary{OpEq, col(0, "n_name", value.KindString), lit(value.Str("FRANCE"))}
	b := &Binary{OpEq, col(3, "n_name", value.KindString), lit(value.Str("FRANCE"))}
	if a.String() != b.String() {
		t.Fatal("display strings should collide (same name)")
	}
	if Canon(a) == Canon(b) {
		t.Error("Canon must distinguish columns at different positions")
	}
}

func TestCanonForms(t *testing.T) {
	cases := []struct {
		e    Expr
		want string
	}{
		{col(2, "x", value.KindInt), "x#2"},
		{lit(value.Int(5)), "5"},
		{lit(value.Str("s")), "'s'"},
		{&Binary{OpAdd, col(0, "a", value.KindInt), lit(value.Int(1))}, "(a#0 + 1)"},
		{&Unary{OpNot, lit(value.Bool(true))}, "(NOT true)"},
		{&Unary{OpNeg, col(1, "b", value.KindInt)}, "(-b#1)"},
	}
	for _, c := range cases {
		if got := Canon(c.e); got != c.want {
			t.Errorf("Canon = %q, want %q", got, c.want)
		}
	}
	if Canon(nil) != "<nil>" {
		t.Error("Canon(nil) wrong")
	}
}

func TestDescribe(t *testing.T) {
	if Describe(nil) != "true" {
		t.Error("nil predicate describes as true")
	}
	e := &Binary{OpLt, col(0, "a", value.KindInt), lit(value.Int(3))}
	if Describe(e) != "(a < 3)" {
		t.Errorf("Describe = %q", Describe(e))
	}
}
