package expr

import (
	"ishare/internal/catalog"
	"ishare/internal/value"
)

// StatsProvider supplies column statistics for selectivity estimation.
// Implementations return ok=false when no statistics are known.
type StatsProvider interface {
	ColumnStats(index int) (catalog.ColumnStats, bool)
}

// Default selectivities used when statistics are unavailable, following the
// classical System R defaults.
const (
	defaultEqSel    = 0.005
	defaultRangeSel = 1.0 / 3.0
	defaultOtherSel = 0.5
)

// Selectivity estimates the fraction of rows satisfying predicate e.
// A nil predicate selects everything.
func Selectivity(e Expr, sp StatsProvider) float64 {
	if e == nil {
		return 1
	}
	switch n := e.(type) {
	case *Const:
		if n.Val.K == value.KindBool {
			if n.Val.I == 1 {
				return 1
			}
			return 0
		}
		return 1
	case *Unary:
		if n.Op == OpNot {
			return clampSel(1 - Selectivity(n.E, sp))
		}
		return defaultOtherSel
	case *Like:
		if n.Negate {
			return clampSel(1 - likeSelectivity)
		}
		return likeSelectivity
	case *Binary:
		switch n.Op {
		case OpAnd:
			return clampSel(Selectivity(n.L, sp) * Selectivity(n.R, sp))
		case OpOr:
			l, r := Selectivity(n.L, sp), Selectivity(n.R, sp)
			return clampSel(l + r - l*r)
		case OpEq:
			return eqSelectivity(n, sp)
		case OpNe:
			return clampSel(1 - eqSelectivity(n, sp))
		case OpLt, OpLe, OpGt, OpGe:
			return rangeSelectivity(n, sp)
		default:
			return defaultOtherSel
		}
	default:
		return defaultOtherSel
	}
}

func clampSel(s float64) float64 {
	if s < 0 {
		return 0
	}
	if s > 1 {
		return 1
	}
	return s
}

// columnAndConst extracts (column, constant) from a comparison in either
// orientation, flipping the operator when the constant is on the left.
func columnAndConst(b *Binary) (*Column, value.Value, Op, bool) {
	if c, ok := b.L.(*Column); ok {
		if k, ok2 := b.R.(*Const); ok2 {
			return c, k.Val, b.Op, true
		}
	}
	if c, ok := b.R.(*Column); ok {
		if k, ok2 := b.L.(*Const); ok2 {
			return c, k.Val, flipOp(b.Op), true
		}
	}
	return nil, value.Null, b.Op, false
}

func flipOp(o Op) Op {
	switch o {
	case OpLt:
		return OpGt
	case OpLe:
		return OpGe
	case OpGt:
		return OpLt
	case OpGe:
		return OpLe
	default:
		return o
	}
}

func eqSelectivity(b *Binary, sp StatsProvider) float64 {
	if c, _, _, ok := columnAndConst(b); ok && sp != nil {
		if st, ok2 := sp.ColumnStats(c.Index); ok2 && st.Distinct > 0 {
			return clampSel(1 / st.Distinct)
		}
	}
	// column = column (an equi-join shape reaching a filter): use the
	// larger distinct count when both sides are known.
	lc, lok := b.L.(*Column)
	rc, rok := b.R.(*Column)
	if lok && rok && sp != nil {
		ls, ok1 := sp.ColumnStats(lc.Index)
		rs, ok2 := sp.ColumnStats(rc.Index)
		if ok1 && ok2 {
			d := ls.Distinct
			if rs.Distinct > d {
				d = rs.Distinct
			}
			if d > 0 {
				return clampSel(1 / d)
			}
		}
	}
	return defaultEqSel
}

func rangeSelectivity(b *Binary, sp StatsProvider) float64 {
	c, k, op, ok := columnAndConst(b)
	if !ok || sp == nil {
		return defaultRangeSel
	}
	st, ok := sp.ColumnStats(c.Index)
	if !ok || st.Min.IsNull() || st.Max.IsNull() {
		return defaultRangeSel
	}
	lo, hi, v := st.Min.AsFloat(), st.Max.AsFloat(), k.AsFloat()
	if hi <= lo {
		return defaultRangeSel
	}
	frac := (v - lo) / (hi - lo)
	frac = clampSel(frac)
	switch op {
	case OpLt, OpLe:
		return frac
	default: // OpGt, OpGe
		return clampSel(1 - frac)
	}
}
