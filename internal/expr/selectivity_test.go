package expr

import (
	"math"
	"testing"

	"ishare/internal/catalog"
	"ishare/internal/value"
)

type mapStats map[int]catalog.ColumnStats

func (m mapStats) ColumnStats(i int) (catalog.ColumnStats, bool) {
	s, ok := m[i]
	return s, ok
}

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestSelectivityNilPredicate(t *testing.T) {
	if got := Selectivity(nil, nil); got != 1 {
		t.Errorf("nil predicate = %v", got)
	}
}

func TestSelectivityEquality(t *testing.T) {
	sp := mapStats{0: {Distinct: 50}}
	e := &Binary{OpEq, col(0, "a", value.KindInt), lit(value.Int(7))}
	if got := Selectivity(e, sp); !almost(got, 1.0/50) {
		t.Errorf("eq sel = %v, want 0.02", got)
	}
	// Constant on the left.
	e2 := &Binary{OpEq, lit(value.Int(7)), col(0, "a", value.KindInt)}
	if got := Selectivity(e2, sp); !almost(got, 1.0/50) {
		t.Errorf("flipped eq sel = %v", got)
	}
	// No stats: default.
	if got := Selectivity(e, mapStats{}); !almost(got, defaultEqSel) {
		t.Errorf("default eq sel = %v", got)
	}
}

func TestSelectivityNe(t *testing.T) {
	sp := mapStats{0: {Distinct: 4}}
	e := &Binary{OpNe, col(0, "a", value.KindInt), lit(value.Int(7))}
	if got := Selectivity(e, sp); !almost(got, 0.75) {
		t.Errorf("ne sel = %v, want 0.75", got)
	}
}

func TestSelectivityRange(t *testing.T) {
	sp := mapStats{0: {Distinct: 100, Min: value.Int(0), Max: value.Int(100)}}
	lt := &Binary{OpLt, col(0, "a", value.KindInt), lit(value.Int(25))}
	if got := Selectivity(lt, sp); !almost(got, 0.25) {
		t.Errorf("lt sel = %v, want 0.25", got)
	}
	gt := &Binary{OpGt, col(0, "a", value.KindInt), lit(value.Int(25))}
	if got := Selectivity(gt, sp); !almost(got, 0.75) {
		t.Errorf("gt sel = %v, want 0.75", got)
	}
	// Flipped: 25 < a is a > 25.
	flip := &Binary{OpLt, lit(value.Int(25)), col(0, "a", value.KindInt)}
	if got := Selectivity(flip, sp); !almost(got, 0.75) {
		t.Errorf("flipped sel = %v, want 0.75", got)
	}
	// Out-of-range constants clamp.
	hi := &Binary{OpLt, col(0, "a", value.KindInt), lit(value.Int(500))}
	if got := Selectivity(hi, sp); !almost(got, 1) {
		t.Errorf("clamped sel = %v, want 1", got)
	}
}

func TestSelectivityRangeNoStats(t *testing.T) {
	e := &Binary{OpLt, col(0, "a", value.KindInt), lit(value.Int(25))}
	if got := Selectivity(e, nil); !almost(got, defaultRangeSel) {
		t.Errorf("no-stats range sel = %v", got)
	}
}

func TestSelectivityConnectives(t *testing.T) {
	sp := mapStats{
		0: {Distinct: 10},
		1: {Distinct: 10},
	}
	a := &Binary{OpEq, col(0, "a", value.KindInt), lit(value.Int(1))}
	b := &Binary{OpEq, col(1, "b", value.KindInt), lit(value.Int(2))}
	and := &Binary{OpAnd, a, b}
	if got := Selectivity(and, sp); !almost(got, 0.01) {
		t.Errorf("and sel = %v, want 0.01", got)
	}
	or := &Binary{OpOr, a, b}
	if got := Selectivity(or, sp); !almost(got, 0.19) {
		t.Errorf("or sel = %v, want 0.19", got)
	}
	not := &Unary{OpNot, a}
	if got := Selectivity(not, sp); !almost(got, 0.9) {
		t.Errorf("not sel = %v, want 0.9", got)
	}
}

func TestSelectivityColumnEqColumn(t *testing.T) {
	sp := mapStats{0: {Distinct: 20}, 1: {Distinct: 80}}
	e := &Binary{OpEq, col(0, "a", value.KindInt), col(1, "b", value.KindInt)}
	if got := Selectivity(e, sp); !almost(got, 1.0/80) {
		t.Errorf("col=col sel = %v, want 1/80", got)
	}
}

func TestSelectivityBoolConst(t *testing.T) {
	if got := Selectivity(lit(value.Bool(true)), nil); got != 1 {
		t.Errorf("true sel = %v", got)
	}
	if got := Selectivity(lit(value.Bool(false)), nil); got != 0 {
		t.Errorf("false sel = %v", got)
	}
}

func TestSelectivityBounds(t *testing.T) {
	// Selectivity must always be in [0,1] for a mess of nested predicates.
	sp := mapStats{0: {Distinct: 2, Min: value.Int(0), Max: value.Int(1)}}
	e := And(
		&Binary{OpOr,
			&Binary{OpEq, col(0, "a", value.KindInt), lit(value.Int(1))},
			&Unary{OpNot, &Binary{OpLt, col(0, "a", value.KindInt), lit(value.Int(1))}},
		},
		&Binary{OpGe, col(0, "a", value.KindInt), lit(value.Int(0))},
	)
	got := Selectivity(e, sp)
	if got < 0 || got > 1 {
		t.Errorf("sel out of bounds: %v", got)
	}
}
