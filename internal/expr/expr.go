// Package expr defines scalar expressions over rows: column references,
// literals, arithmetic, comparisons and boolean connectives. Expressions are
// immutable trees; evaluation is allocation-free for scalar results.
package expr

import (
	"fmt"
	"strings"

	"ishare/internal/value"
)

// Op enumerates operators.
type Op uint8

// Operator constants. Comparison operators evaluate to BOOL; arithmetic
// operators follow numeric promotion (INT op INT = INT except division).
const (
	OpAdd Op = iota
	OpSub
	OpMul
	OpDiv
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
	OpNot
	OpNeg
)

// String returns the SQL spelling of the operator.
func (o Op) String() string {
	switch o {
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	case OpEq:
		return "="
	case OpNe:
		return "<>"
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpAnd:
		return "AND"
	case OpOr:
		return "OR"
	case OpNot:
		return "NOT"
	case OpNeg:
		return "-"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// Comparison reports whether the operator yields a boolean from two scalars.
func (o Op) Comparison() bool { return o >= OpEq && o <= OpGe }

// Expr is a scalar expression evaluated against a row.
type Expr interface {
	// Eval computes the expression over the row.
	Eval(row value.Row) value.Value
	// Type returns the static result kind.
	Type() value.Kind
	// String renders a canonical form used in plan signatures.
	String() string
	// Walk visits this node and all children.
	Walk(fn func(Expr))
}

// Column is a reference to an input column by position.
type Column struct {
	// Index is the position in the input row.
	Index int
	// Name is the qualified source name, kept for display and signatures.
	Name string
	// Kind is the column's type.
	Kind value.Kind
}

// Eval returns the row's value at the column index.
func (c *Column) Eval(row value.Row) value.Value { return row[c.Index] }

// Type returns the column kind.
func (c *Column) Type() value.Kind { return c.Kind }

// String renders the column by name.
func (c *Column) String() string { return c.Name }

// Walk visits the node.
func (c *Column) Walk(fn func(Expr)) { fn(c) }

// Const is a literal value.
type Const struct {
	Val value.Value
}

// Eval returns the literal.
func (c *Const) Eval(value.Row) value.Value { return c.Val }

// Type returns the literal kind.
func (c *Const) Type() value.Kind { return c.Val.K }

// String renders the literal; strings are quoted.
func (c *Const) String() string {
	if c.Val.K == value.KindString {
		return "'" + c.Val.S + "'"
	}
	return c.Val.String()
}

// Walk visits the node.
func (c *Const) Walk(fn func(Expr)) { fn(c) }

// Binary applies Op to two operands.
type Binary struct {
	Op   Op
	L, R Expr
}

// Eval applies the operator with SQL-ish NULL propagation: any NULL operand
// yields NULL, except AND/OR which use two-valued logic over non-NULL inputs.
// AND and OR short-circuit on a decisive left operand; expressions are pure,
// so the result matches Apply over both eagerly evaluated operands.
func (b *Binary) Eval(row value.Row) value.Value {
	l := b.L.Eval(row)
	switch b.Op {
	case OpAnd:
		if l.K == value.KindBool && l.I == 0 {
			return value.Bool(false)
		}
	case OpOr:
		if l.Truth() {
			return value.Bool(true)
		}
	}
	return Apply(b.Op, l, b.R.Eval(row))
}

// Apply combines two already evaluated operands under op with Binary.Eval's
// exact semantics. The vectorized evaluator (internal/vec) uses it so
// column-at-a-time results cannot drift from scalar evaluation.
func Apply(op Op, l, r value.Value) value.Value {
	switch op {
	case OpAnd:
		if l.K == value.KindBool && l.I == 0 {
			return value.Bool(false)
		}
		if l.IsNull() || r.IsNull() {
			return value.Null
		}
		return value.Bool(l.Truth() && r.Truth())
	case OpOr:
		if l.Truth() {
			return value.Bool(true)
		}
		if l.IsNull() || r.IsNull() {
			return value.Null
		}
		return value.Bool(l.Truth() || r.Truth())
	}
	if l.IsNull() || r.IsNull() {
		return value.Null
	}
	if op.Comparison() {
		c := value.Compare(l, r)
		switch op {
		case OpEq:
			return value.Bool(c == 0)
		case OpNe:
			return value.Bool(c != 0)
		case OpLt:
			return value.Bool(c < 0)
		case OpLe:
			return value.Bool(c <= 0)
		case OpGt:
			return value.Bool(c > 0)
		default:
			return value.Bool(c >= 0)
		}
	}
	return arith(op, l, r)
}

func arith(op Op, l, r value.Value) value.Value {
	if l.K == value.KindInt && r.K == value.KindInt && op != OpDiv {
		switch op {
		case OpAdd:
			return value.Int(l.I + r.I)
		case OpSub:
			return value.Int(l.I - r.I)
		case OpMul:
			return value.Int(l.I * r.I)
		}
	}
	lf, rf := l.AsFloat(), r.AsFloat()
	switch op {
	case OpAdd:
		return value.Float(lf + rf)
	case OpSub:
		return value.Float(lf - rf)
	case OpMul:
		return value.Float(lf * rf)
	case OpDiv:
		if rf == 0 {
			return value.Null
		}
		return value.Float(lf / rf)
	default:
		return value.Null
	}
}

// Type returns the static result kind of the binary expression.
func (b *Binary) Type() value.Kind {
	if b.Op.Comparison() || b.Op == OpAnd || b.Op == OpOr {
		return value.KindBool
	}
	if b.Op == OpDiv {
		return value.KindFloat
	}
	if b.L.Type() == value.KindInt && b.R.Type() == value.KindInt {
		return value.KindInt
	}
	return value.KindFloat
}

// String renders the expression fully parenthesized for canonical signatures.
func (b *Binary) String() string {
	return "(" + b.L.String() + " " + b.Op.String() + " " + b.R.String() + ")"
}

// Walk visits the node and its operands.
func (b *Binary) Walk(fn func(Expr)) {
	fn(b)
	b.L.Walk(fn)
	b.R.Walk(fn)
}

// Unary applies NOT or numeric negation.
type Unary struct {
	Op Op
	E  Expr
}

// Eval applies the unary operator with NULL propagation.
func (u *Unary) Eval(row value.Row) value.Value {
	return ApplyUnary(u.Op, u.E.Eval(row))
}

// ApplyUnary applies op to an already evaluated operand with Unary.Eval's
// exact semantics.
func ApplyUnary(op Op, v value.Value) value.Value {
	if v.IsNull() {
		return value.Null
	}
	switch op {
	case OpNot:
		return value.Bool(!v.Truth())
	case OpNeg:
		if v.K == value.KindInt {
			return value.Int(-v.I)
		}
		return value.Float(-v.AsFloat())
	default:
		return value.Null
	}
}

// Type returns the static result kind.
func (u *Unary) Type() value.Kind {
	if u.Op == OpNot {
		return value.KindBool
	}
	return u.E.Type()
}

// String renders the unary expression.
func (u *Unary) String() string {
	if u.Op == OpNot {
		return "(NOT " + u.E.String() + ")"
	}
	return "(-" + u.E.String() + ")"
}

// Walk visits the node and its operand.
func (u *Unary) Walk(fn func(Expr)) {
	fn(u)
	u.E.Walk(fn)
}

// Columns returns the distinct input column indexes referenced by e, in
// first-seen order.
func Columns(e Expr) []int {
	var out []int
	seen := make(map[int]bool)
	e.Walk(func(n Expr) {
		if c, ok := n.(*Column); ok && !seen[c.Index] {
			seen[c.Index] = true
			out = append(out, c.Index)
		}
	})
	return out
}

// Remap returns a copy of e with every column index rewritten through m.
// Missing entries keep their index. Names and kinds are preserved.
func Remap(e Expr, m map[int]int) Expr {
	switch n := e.(type) {
	case *Column:
		idx := n.Index
		if to, ok := m[idx]; ok {
			idx = to
		}
		return &Column{Index: idx, Name: n.Name, Kind: n.Kind}
	case *Const:
		return n
	case *Binary:
		return &Binary{Op: n.Op, L: Remap(n.L, m), R: Remap(n.R, m)}
	case *Unary:
		return &Unary{Op: n.Op, E: Remap(n.E, m)}
	case *Like:
		return NewLike(Remap(n.E, m), n.Pattern, n.Negate)
	default:
		return e
	}
}

// Equal reports structural equality by canonical string form.
func Equal(a, b Expr) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	return a.String() == b.String()
}

// Conjuncts splits a predicate on top-level ANDs.
func Conjuncts(e Expr) []Expr {
	if b, ok := e.(*Binary); ok && b.Op == OpAnd {
		return append(Conjuncts(b.L), Conjuncts(b.R)...)
	}
	return []Expr{e}
}

// And combines predicates with AND; nil inputs are skipped. Returns nil if
// all inputs are nil.
func And(preds ...Expr) Expr {
	var out Expr
	for _, p := range preds {
		if p == nil {
			continue
		}
		if out == nil {
			out = p
		} else {
			out = &Binary{Op: OpAnd, L: out, R: p}
		}
	}
	return out
}

// Validate type-checks the expression, returning an error describing the
// first ill-typed node found.
func Validate(e Expr) error {
	var err error
	e.Walk(func(n Expr) {
		if err != nil {
			return
		}
		switch x := n.(type) {
		case *Binary:
			lt, rt := x.L.Type(), x.R.Type()
			switch {
			case x.Op == OpAnd || x.Op == OpOr:
				if lt != value.KindBool || rt != value.KindBool {
					err = fmt.Errorf("expr: %s requires boolean operands, got %s %s", x.Op, lt, rt)
				}
			case x.Op.Comparison():
				if !comparable(lt, rt) {
					err = fmt.Errorf("expr: cannot compare %s with %s", lt, rt)
				}
			default:
				if !lt.Numeric() || !rt.Numeric() {
					err = fmt.Errorf("expr: arithmetic %s requires numeric operands, got %s %s", x.Op, lt, rt)
				}
			}
		case *Unary:
			et := x.E.Type()
			if x.Op == OpNot && et != value.KindBool {
				err = fmt.Errorf("expr: NOT requires a boolean operand, got %s", et)
			}
			if x.Op == OpNeg && !et.Numeric() {
				err = fmt.Errorf("expr: negation requires a numeric operand, got %s", et)
			}
		case *Like:
			if et := x.E.Type(); et != value.KindString {
				err = fmt.Errorf("expr: LIKE requires a string operand, got %s", et)
			}
		}
	})
	return err
}

func comparable(a, b value.Kind) bool {
	if a == b {
		return true
	}
	return a.Numeric() && b.Numeric()
}

// Describe renders a short human-readable form for plan explain output.
func Describe(e Expr) string {
	if e == nil {
		return "true"
	}
	s := e.String()
	return strings.TrimSpace(s)
}
