package expr

import "strconv"

// Canon renders a canonical form of the expression that is unambiguous
// about column identity: columns render as name#index, so two columns that
// merely share a name (e.g. self-join aliases) never collide. Plan
// signatures and merge-time expression dedup use Canon; String remains the
// human-readable display form.
func Canon(e Expr) string {
	if e == nil {
		return "<nil>"
	}
	switch n := e.(type) {
	case *Column:
		return n.Name + "#" + strconv.Itoa(n.Index)
	case *Const:
		return n.String()
	case *Binary:
		return "(" + Canon(n.L) + " " + n.Op.String() + " " + Canon(n.R) + ")"
	case *Unary:
		if n.Op == OpNot {
			return "(NOT " + Canon(n.E) + ")"
		}
		return "(-" + Canon(n.E) + ")"
	case *Like:
		op := "LIKE"
		if n.Negate {
			op = "NOT LIKE"
		}
		return "(" + Canon(n.E) + " " + op + " '" + n.Pattern + "')"
	default:
		return e.String()
	}
}
