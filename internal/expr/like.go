package expr

import (
	"strings"

	"ishare/internal/value"
)

// Like is the SQL LIKE predicate: `%` matches any sequence, `_` any single
// byte. Patterns are compiled once at construction.
type Like struct {
	// E is the matched string expression.
	E Expr
	// Pattern is the original SQL pattern.
	Pattern string
	// Negate inverts the match (NOT LIKE).
	Negate bool

	segments []string
	anchorL  bool // pattern does not start with %
	anchorR  bool // pattern does not end with %
}

// NewLike compiles a LIKE predicate.
func NewLike(e Expr, pattern string, negate bool) *Like {
	l := &Like{E: e, Pattern: pattern, Negate: negate}
	l.anchorL = !strings.HasPrefix(pattern, "%")
	l.anchorR = !strings.HasSuffix(pattern, "%")
	for _, seg := range strings.Split(pattern, "%") {
		if seg != "" {
			l.segments = append(l.segments, seg)
		}
	}
	return l
}

// Eval matches the pattern with SQL NULL propagation.
func (l *Like) Eval(row value.Row) value.Value {
	return l.Apply(l.E.Eval(row))
}

// Apply matches an already evaluated operand — the vectorized evaluator's
// per-element entry point.
func (l *Like) Apply(v value.Value) value.Value {
	if v.IsNull() {
		return value.Null
	}
	m := l.match(v.S)
	if l.Negate {
		m = !m
	}
	return value.Bool(m)
}

// match runs the compiled segment matcher over s.
func (l *Like) match(s string) bool {
	segs := l.segments
	if len(segs) == 0 {
		// Pattern was only % signs (or empty).
		return l.Pattern != "" || s == ""
	}
	// A %-free pattern must match the whole string exactly.
	if l.anchorL && l.anchorR && len(segs) == 1 {
		return len(s) == len(segs[0]) && matchHere(s, segs[0])
	}
	// Leading anchored segment.
	if l.anchorL {
		if !matchHere(s, segs[0]) {
			return false
		}
		s = s[segLen(segs[0]):]
		segs = segs[1:]
	}
	// Trailing anchored segment (when distinct from the leading one).
	var tail string
	if l.anchorR && len(segs) > 0 {
		tail = segs[len(segs)-1]
		segs = segs[:len(segs)-1]
	}
	// Interior segments match greedily left to right.
	for _, seg := range segs {
		idx := indexSeg(s, seg)
		if idx < 0 {
			return false
		}
		s = s[idx+segLen(seg):]
	}
	if tail != "" {
		if len(s) < segLen(tail) {
			return false
		}
		return matchHere(s[len(s)-segLen(tail):], tail)
	}
	return true
}

// segLen is the number of bytes a segment consumes (each `_` is one byte).
func segLen(seg string) int { return len(seg) }

// matchHere matches a %-free segment at the start of s, honoring `_`.
func matchHere(s, seg string) bool {
	if len(s) < len(seg) {
		return false
	}
	for i := 0; i < len(seg); i++ {
		if seg[i] != '_' && seg[i] != s[i] {
			return false
		}
	}
	return true
}

// indexSeg finds the first match of a %-free segment in s.
func indexSeg(s, seg string) int {
	if !strings.ContainsRune(seg, '_') {
		return strings.Index(s, seg)
	}
	for i := 0; i+len(seg) <= len(s); i++ {
		if matchHere(s[i:], seg) {
			return i
		}
	}
	return -1
}

// Type is BOOL.
func (l *Like) Type() value.Kind { return value.KindBool }

// String renders the predicate.
func (l *Like) String() string {
	op := "LIKE"
	if l.Negate {
		op = "NOT LIKE"
	}
	return "(" + l.E.String() + " " + op + " '" + l.Pattern + "')"
}

// Walk visits the node and its operand.
func (l *Like) Walk(fn func(Expr)) {
	fn(l)
	l.E.Walk(fn)
}

// likeSelectivity is the default fraction of strings matching a LIKE
// pattern (System R-style constant).
const likeSelectivity = 0.1
