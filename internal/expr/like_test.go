package expr

import (
	"testing"

	"ishare/internal/value"
)

func evalLike(pattern, s string, negate bool) value.Value {
	l := NewLike(lit(value.Str(s)), pattern, negate)
	return l.Eval(nil)
}

func TestLikeMatching(t *testing.T) {
	cases := []struct {
		pattern, s string
		want       bool
	}{
		{"%green%", "forest green smoke", true},
		{"%green%", "navy blue", false},
		{"green%", "green tea", true},
		{"green%", "sea green", false},
		{"%green", "sea green", true},
		{"%green", "green tea", false},
		{"green", "green", true},
		{"green", "greens", false},
		{"gr__n", "green", true},
		{"gr__n", "groan", true},
		{"gr__n", "grain", true},
		{"gr__n", "grn", false},
		{"%a%b%", "xaxbx", true},
		{"%a%b%", "xbxax", false},
		{"%", "anything", true},
		{"%", "", true},
		{"_", "x", true},
		{"_", "xy", false},
		{"a%z", "az", true},
		{"a%z", "a-middle-z", true},
		{"a%z", "za", false},
	}
	for _, c := range cases {
		if got := evalLike(c.pattern, c.s, false); got.Truth() != c.want {
			t.Errorf("LIKE %q on %q = %v, want %v", c.pattern, c.s, got.Truth(), c.want)
		}
		if got := evalLike(c.pattern, c.s, true); got.Truth() == c.want {
			t.Errorf("NOT LIKE %q on %q should invert", c.pattern, c.s)
		}
	}
}

func TestLikeNullPropagates(t *testing.T) {
	l := NewLike(lit(value.Null), "%x%", false)
	if got := l.Eval(nil); !got.IsNull() {
		t.Errorf("LIKE over NULL = %v, want NULL", got)
	}
}

func TestLikeTypeAndStrings(t *testing.T) {
	l := NewLike(col(0, "p_name", value.KindString), "%green%", false)
	if l.Type() != value.KindBool {
		t.Error("LIKE must type as BOOL")
	}
	if got := l.String(); got != "(p_name LIKE '%green%')" {
		t.Errorf("String = %q", got)
	}
	if got := Canon(l); got != "(p_name#0 LIKE '%green%')" {
		t.Errorf("Canon = %q", got)
	}
	n := NewLike(col(0, "p_name", value.KindString), "x", true)
	if got := n.String(); got != "(p_name NOT LIKE 'x')" {
		t.Errorf("negated String = %q", got)
	}
}

func TestLikeValidateAndRemap(t *testing.T) {
	bad := NewLike(col(0, "n", value.KindInt), "%x%", false)
	if err := Validate(bad); err == nil {
		t.Error("LIKE over non-string accepted")
	}
	good := NewLike(col(2, "p_name", value.KindString), "%x%", false)
	if err := Validate(good); err != nil {
		t.Errorf("Validate: %v", err)
	}
	moved := Remap(good, map[int]int{2: 7})
	if cols := Columns(moved); len(cols) != 1 || cols[0] != 7 {
		t.Errorf("Remap columns = %v", cols)
	}
}

func TestLikeSelectivity(t *testing.T) {
	pos := NewLike(col(0, "s", value.KindString), "%x%", false)
	neg := NewLike(col(0, "s", value.KindString), "%x%", true)
	ps, ns := Selectivity(pos, nil), Selectivity(neg, nil)
	if ps <= 0 || ps >= 0.5 {
		t.Errorf("LIKE selectivity = %v", ps)
	}
	if ns <= 0.5 || ns >= 1 {
		t.Errorf("NOT LIKE selectivity = %v", ns)
	}
}
