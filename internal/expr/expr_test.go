package expr

import (
	"testing"
	"testing/quick"

	"ishare/internal/value"
)

func col(i int, name string, k value.Kind) *Column {
	return &Column{Index: i, Name: name, Kind: k}
}

func lit(v value.Value) *Const { return &Const{Val: v} }

func TestOpString(t *testing.T) {
	cases := map[Op]string{
		OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/",
		OpEq: "=", OpNe: "<>", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=",
		OpAnd: "AND", OpOr: "OR", OpNot: "NOT",
	}
	for op, want := range cases {
		if got := op.String(); got != want {
			t.Errorf("%v.String() = %q, want %q", uint8(op), got, want)
		}
	}
}

func TestArithmetic(t *testing.T) {
	row := value.Row{value.Int(6), value.Int(4), value.Float(2.5)}
	cases := []struct {
		e    Expr
		want value.Value
	}{
		{&Binary{OpAdd, col(0, "a", value.KindInt), col(1, "b", value.KindInt)}, value.Int(10)},
		{&Binary{OpSub, col(0, "a", value.KindInt), col(1, "b", value.KindInt)}, value.Int(2)},
		{&Binary{OpMul, col(0, "a", value.KindInt), col(1, "b", value.KindInt)}, value.Int(24)},
		{&Binary{OpDiv, col(0, "a", value.KindInt), col(1, "b", value.KindInt)}, value.Float(1.5)},
		{&Binary{OpAdd, col(0, "a", value.KindInt), col(2, "c", value.KindFloat)}, value.Float(8.5)},
		{&Unary{OpNeg, col(0, "a", value.KindInt)}, value.Int(-6)},
		{&Unary{OpNeg, col(2, "c", value.KindFloat)}, value.Float(-2.5)},
	}
	for _, c := range cases {
		if got := c.e.Eval(row); !value.Equal(got, c.want) {
			t.Errorf("%s = %v, want %v", c.e, got, c.want)
		}
	}
}

func TestDivisionByZeroIsNull(t *testing.T) {
	e := &Binary{OpDiv, lit(value.Int(1)), lit(value.Int(0))}
	if got := e.Eval(nil); !got.IsNull() {
		t.Errorf("1/0 = %v, want NULL", got)
	}
}

func TestComparisons(t *testing.T) {
	row := value.Row{value.Int(3), value.Int(5), value.Str("abc")}
	cases := []struct {
		e    Expr
		want bool
	}{
		{&Binary{OpEq, col(0, "a", value.KindInt), lit(value.Int(3))}, true},
		{&Binary{OpNe, col(0, "a", value.KindInt), lit(value.Int(3))}, false},
		{&Binary{OpLt, col(0, "a", value.KindInt), col(1, "b", value.KindInt)}, true},
		{&Binary{OpLe, col(0, "a", value.KindInt), lit(value.Int(3))}, true},
		{&Binary{OpGt, col(1, "b", value.KindInt), col(0, "a", value.KindInt)}, true},
		{&Binary{OpGe, col(0, "a", value.KindInt), col(1, "b", value.KindInt)}, false},
		{&Binary{OpEq, col(2, "s", value.KindString), lit(value.Str("abc"))}, true},
	}
	for _, c := range cases {
		if got := c.e.Eval(row); got.Truth() != c.want {
			t.Errorf("%s = %v, want %v", c.e, got, c.want)
		}
	}
}

func TestBooleanLogicAndNullPropagation(t *testing.T) {
	tr, fa, nl := lit(value.Bool(true)), lit(value.Bool(false)), lit(value.Null)
	cases := []struct {
		e    Expr
		want value.Value
	}{
		{&Binary{OpAnd, tr, tr}, value.Bool(true)},
		{&Binary{OpAnd, tr, fa}, value.Bool(false)},
		{&Binary{OpAnd, fa, nl}, value.Bool(false)}, // short-circuit
		{&Binary{OpAnd, tr, nl}, value.Null},
		{&Binary{OpOr, fa, tr}, value.Bool(true)},
		{&Binary{OpOr, tr, nl}, value.Bool(true)}, // short-circuit
		{&Binary{OpOr, fa, nl}, value.Null},
		{&Unary{OpNot, tr}, value.Bool(false)},
		{&Unary{OpNot, nl}, value.Null},
		{&Binary{OpEq, nl, lit(value.Int(1))}, value.Null},
		{&Binary{OpAdd, nl, lit(value.Int(1))}, value.Null},
	}
	for _, c := range cases {
		got := c.e.Eval(nil)
		if got.K != c.want.K || got.I != c.want.I {
			t.Errorf("%s = %v, want %v", c.e, got, c.want)
		}
	}
}

func TestTypes(t *testing.T) {
	cases := []struct {
		e    Expr
		want value.Kind
	}{
		{&Binary{OpAdd, col(0, "a", value.KindInt), col(1, "b", value.KindInt)}, value.KindInt},
		{&Binary{OpAdd, col(0, "a", value.KindInt), col(1, "b", value.KindFloat)}, value.KindFloat},
		{&Binary{OpDiv, col(0, "a", value.KindInt), col(1, "b", value.KindInt)}, value.KindFloat},
		{&Binary{OpEq, col(0, "a", value.KindInt), col(1, "b", value.KindInt)}, value.KindBool},
		{&Unary{OpNot, lit(value.Bool(true))}, value.KindBool},
		{&Unary{OpNeg, col(0, "a", value.KindInt)}, value.KindInt},
	}
	for _, c := range cases {
		if got := c.e.Type(); got != c.want {
			t.Errorf("%s.Type() = %v, want %v", c.e, got, c.want)
		}
	}
}

func TestValidate(t *testing.T) {
	good := &Binary{OpAnd,
		&Binary{OpEq, col(0, "a", value.KindInt), lit(value.Int(1))},
		&Binary{OpLt, col(1, "b", value.KindFloat), lit(value.Float(2))},
	}
	if err := Validate(good); err != nil {
		t.Errorf("Validate(good) = %v", err)
	}
	bad := []Expr{
		&Binary{OpAnd, lit(value.Int(1)), lit(value.Bool(true))},
		&Binary{OpAdd, lit(value.Str("x")), lit(value.Int(1))},
		&Binary{OpEq, lit(value.Str("x")), lit(value.Int(1))},
		&Unary{OpNot, lit(value.Int(1))},
		&Unary{OpNeg, lit(value.Str("x"))},
	}
	for _, e := range bad {
		if err := Validate(e); err == nil {
			t.Errorf("Validate(%s) accepted ill-typed expression", e)
		}
	}
}

func TestCanonicalString(t *testing.T) {
	e := &Binary{OpAnd,
		&Binary{OpEq, col(0, "p_brand", value.KindString), lit(value.Str("Brand#23"))},
		&Binary{OpGe, col(1, "p_size", value.KindInt), lit(value.Int(15))},
	}
	want := "((p_brand = 'Brand#23') AND (p_size >= 15))"
	if got := e.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestColumnsAndRemap(t *testing.T) {
	e := &Binary{OpAnd,
		&Binary{OpEq, col(2, "a", value.KindInt), col(0, "b", value.KindInt)},
		&Binary{OpLt, col(2, "a", value.KindInt), lit(value.Int(9))},
	}
	cols := Columns(e)
	if len(cols) != 2 || cols[0] != 2 || cols[1] != 0 {
		t.Errorf("Columns = %v", cols)
	}
	r := Remap(e, map[int]int{2: 5, 0: 1})
	cols = Columns(r)
	if len(cols) != 2 || cols[0] != 5 || cols[1] != 1 {
		t.Errorf("remapped Columns = %v", cols)
	}
	// Original must be untouched.
	if c := Columns(e); c[0] != 2 {
		t.Error("Remap mutated its input")
	}
}

func TestConjunctsAndAnd(t *testing.T) {
	a := &Binary{OpEq, col(0, "a", value.KindInt), lit(value.Int(1))}
	b := &Binary{OpEq, col(1, "b", value.KindInt), lit(value.Int(2))}
	c := &Binary{OpEq, col(2, "c", value.KindInt), lit(value.Int(3))}
	e := And(a, b, c)
	parts := Conjuncts(e)
	if len(parts) != 3 {
		t.Fatalf("Conjuncts = %d parts", len(parts))
	}
	if And() != nil {
		t.Error("And() of nothing must be nil")
	}
	if And(nil, a, nil) != a {
		t.Error("And must skip nils")
	}
}

func TestEqual(t *testing.T) {
	a := &Binary{OpEq, col(0, "x", value.KindInt), lit(value.Int(1))}
	b := &Binary{OpEq, col(0, "x", value.KindInt), lit(value.Int(1))}
	c := &Binary{OpEq, col(0, "x", value.KindInt), lit(value.Int(2))}
	if !Equal(a, b) || Equal(a, c) {
		t.Error("Equal misjudges expressions")
	}
	if !Equal(nil, nil) || Equal(a, nil) {
		t.Error("Equal misjudges nils")
	}
}

// TestQuickNotNot checks NOT(NOT p) == p for non-NULL booleans.
func TestQuickNotNot(t *testing.T) {
	f := func(p bool) bool {
		e := &Unary{OpNot, &Unary{OpNot, lit(value.Bool(p))}}
		return e.Eval(nil).Truth() == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickComparisonTotality checks exactly one of <, =, > holds for ints.
func TestQuickComparisonTotality(t *testing.T) {
	f := func(a, b int64) bool {
		lt := (&Binary{OpLt, lit(value.Int(a)), lit(value.Int(b))}).Eval(nil).Truth()
		eq := (&Binary{OpEq, lit(value.Int(a)), lit(value.Int(b))}).Eval(nil).Truth()
		gt := (&Binary{OpGt, lit(value.Int(a)), lit(value.Int(b))}).Eval(nil).Truth()
		n := 0
		for _, v := range []bool{lt, eq, gt} {
			if v {
				n++
			}
		}
		return n == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
