// Package eventlog is the engine's structured event log: an append-only
// stream of typed runtime events — window closes, scheduler degradation
// decisions, plan grafts (query admission/retirement), arrangement
// lifecycle transitions, drift alerts — rendered as one JSON object per
// line (JSONL). A Log keeps a bounded in-memory ring (the statusz
// endpoint's recent-events view) and optionally streams every event to an
// io.Writer as it is emitted (cmd/ishare -events out.jsonl).
//
// Determinism: emitters assign explicit timestamps (virtual-clock offsets
// from the run epoch) and emit from canonical single-threaded accounting
// code, and encoding/json sorts attribute map keys — so a run on a
// VirtualClock produces byte-identical JSONL at any worker count. That is
// what the scheduler's golden event-log test pins.
//
// A nil *Log is the disabled log: every method no-ops behind one pointer
// check and allocates nothing. Callers building attribute maps must guard
// with Enabled() — constructing the map is the cost, not the call.
package eventlog

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// Event is one structured runtime event.
type Event struct {
	// Seq is the log-assigned sequence number (0-based, dense).
	Seq int `json:"seq"`
	// AtNS is the event's offset from the run epoch in nanoseconds, on
	// the emitter's (virtual or real) clock.
	AtNS int64 `json:"at_ns"`
	// Type names the event: "window.close", "sched.degrade",
	// "drift.alert", "graft", "arrangements", "admit", "retire", ...
	Type string `json:"type"`
	// Window is the trigger window the event belongs to (-1 when n/a).
	Window int `json:"window"`
	// Subplan and Query locate the event (-1 when n/a).
	Subplan int `json:"subplan"`
	Query   int `json:"query"`
	// Attrs carries type-specific fields. encoding/json sorts the keys,
	// keeping the rendered line deterministic.
	Attrs map[string]interface{} `json:"attrs,omitempty"`
}

// KnownTypes is the registry of every event type the engine emits. Validate
// rejects streams carrying any other type, so a new emitter must register
// its type here — which is what keeps cmd/eventcheck an actual schema check
// rather than a JSONL well-formedness check.
var KnownTypes = map[string]bool{
	"window.close":     true, // scheduler window settled (sched)
	"sched.degrade":    true, // overload degradation decision (sched)
	"drift.alert":      true, // observed/modeled drift EWMA out of band (sched)
	"graft":            true, // live plan revision swap (sched)
	"admit":            true, // query admission (session layer, via graft)
	"retire":           true, // query retirement (session layer, via graft)
	"arrangements":     true, // arrangement lifecycle deltas (sched)
	"cost.recalibrate": true, // drift folded back into the cost model (sched)
	"pace.research":    true, // warm-started pace re-search after recalibration (sched)
	"reuse.skip":       true, // clean-cone firings skippable this window (sched)
}

// Log collects events. Construct with New; a nil *Log is disabled.
type Log struct {
	mu   sync.Mutex
	sink io.Writer
	err  error // first sink write error, sticky
	seq  int

	ring []Event
	rpos int
}

// New returns a log retaining the last capacity events in memory
// (capacity ≤ 0 selects 1024) and, when sink is non-nil, streaming every
// event to it as one JSON line.
func New(sink io.Writer, capacity int) *Log {
	if capacity <= 0 {
		capacity = 1024
	}
	return &Log{sink: sink, ring: make([]Event, 0, capacity)}
}

// Enabled reports whether the log records anything; use it to guard
// attribute-map construction on hot paths.
func (l *Log) Enabled() bool { return l != nil }

// Emit records one event, assigning its sequence number. Safe for
// concurrent use; emit order defines sequence order.
func (l *Log) Emit(typ string, atNS int64, window, subplan, query int, attrs map[string]interface{}) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	e := Event{Seq: l.seq, AtNS: atNS, Type: typ, Window: window, Subplan: subplan, Query: query, Attrs: attrs}
	l.seq++
	if len(l.ring) < cap(l.ring) {
		l.ring = append(l.ring, e)
	} else {
		l.ring[l.rpos] = e
		l.rpos = (l.rpos + 1) % len(l.ring)
	}
	if l.sink != nil && l.err == nil {
		b, err := json.Marshal(e)
		if err == nil {
			b = append(b, '\n')
			_, err = l.sink.Write(b)
		}
		if err != nil {
			l.err = err
		}
	}
}

// Len returns how many events were ever emitted.
func (l *Log) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// Err returns the first sink write error, if any.
func (l *Log) Err() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// Events returns the retained events in sequence order (oldest first).
func (l *Log) Events() []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, 0, len(l.ring))
	if l.seq <= cap(l.ring) {
		return append(out, l.ring...)
	}
	out = append(out, l.ring[l.rpos:]...)
	return append(out, l.ring[:l.rpos]...)
}

// WriteJSONL renders the retained events as JSONL — the same byte form the
// streaming sink receives (minus any events the ring has evicted).
func (l *Log) WriteJSONL(w io.Writer) error {
	for _, e := range l.Events() {
		b, err := json.Marshal(e)
		if err != nil {
			return err
		}
		if _, err := w.Write(append(b, '\n')); err != nil {
			return err
		}
	}
	return nil
}

// Validate checks a JSONL stream against the event schema: every line must
// be a JSON object with the Event fields, sequence numbers must be dense
// and ascending from the first line's, and every event must carry a type
// from the KnownTypes registry. It returns the number of events and the
// per-type counts.
func Validate(r io.Reader) (int, map[string]int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	byType := make(map[string]int)
	n := 0
	wantSeq := -1
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var e Event
		dec := json.NewDecoder(bytes.NewReader(line))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&e); err != nil {
			return n, byType, fmt.Errorf("line %d: %w", n+1, err)
		}
		if e.Type == "" {
			return n, byType, fmt.Errorf("line %d: empty event type", n+1)
		}
		if !KnownTypes[e.Type] {
			return n, byType, fmt.Errorf("line %d: unknown event type %q", n+1, e.Type)
		}
		if wantSeq == -1 {
			wantSeq = e.Seq
		}
		if e.Seq != wantSeq {
			return n, byType, fmt.Errorf("line %d: seq %d, want %d", n+1, e.Seq, wantSeq)
		}
		wantSeq++
		byType[e.Type]++
		n++
	}
	if err := sc.Err(); err != nil {
		return n, byType, err
	}
	if n == 0 {
		return 0, byType, fmt.Errorf("no events")
	}
	return n, byType, nil
}
