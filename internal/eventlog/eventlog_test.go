package eventlog

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func TestEmitAssignsDenseSequence(t *testing.T) {
	l := New(nil, 8)
	l.Emit("window.close", 100, 0, -1, -1, nil)
	l.Emit("drift.alert", 200, 1, 3, -1, map[string]interface{}{"drift": 2.5})
	l.Emit("graft", 300, 2, -1, -1, nil)
	if got := l.Len(); got != 3 {
		t.Fatalf("Len() = %d, want 3", got)
	}
	evs := l.Events()
	if len(evs) != 3 {
		t.Fatalf("Events() = %d entries, want 3", len(evs))
	}
	for i, e := range evs {
		if e.Seq != i {
			t.Errorf("event %d has seq %d", i, e.Seq)
		}
	}
	if evs[1].Type != "drift.alert" || evs[1].Subplan != 3 || evs[1].Attrs["drift"] != 2.5 {
		t.Errorf("event 1 = %+v", evs[1])
	}
}

func TestRingEvictsOldest(t *testing.T) {
	l := New(nil, 3)
	for i := 0; i < 5; i++ {
		l.Emit("e", int64(i), i, -1, -1, nil)
	}
	if got := l.Len(); got != 5 {
		t.Fatalf("Len() = %d, want 5", got)
	}
	evs := l.Events()
	if len(evs) != 3 {
		t.Fatalf("retained %d, want 3", len(evs))
	}
	for i, e := range evs {
		if e.Seq != i+2 {
			t.Errorf("retained event %d has seq %d, want %d (oldest evicted, order kept)", i, e.Seq, i+2)
		}
	}
}

func TestSinkStreamsSameBytesAsWriteJSONL(t *testing.T) {
	var sink bytes.Buffer
	l := New(&sink, 16)
	l.Emit("window.close", 1_000_000_000, 0, -1, -1, map[string]interface{}{"work": int64(42), "overloaded": false})
	l.Emit("drift.alert", 2_000_000_000, 1, 2, -1, map[string]interface{}{"drift": 3.0})
	var ring bytes.Buffer
	if err := l.WriteJSONL(&ring); err != nil {
		t.Fatal(err)
	}
	if sink.String() != ring.String() {
		t.Errorf("sink and ring render differently:\nsink: %q\nring: %q", sink.String(), ring.String())
	}
	if !strings.Contains(sink.String(), `"type":"window.close"`) {
		t.Errorf("rendered JSONL missing type: %q", sink.String())
	}
}

func TestValidateAcceptsOwnOutput(t *testing.T) {
	l := New(nil, 8)
	l.Emit("window.close", 1, 0, -1, -1, nil)
	l.Emit("window.close", 2, 1, -1, -1, map[string]interface{}{"met": 2})
	l.Emit("graft", 3, 2, -1, -1, nil)
	var buf bytes.Buffer
	if err := l.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	n, byType, err := Validate(&buf)
	if err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if n != 3 || byType["window.close"] != 2 || byType["graft"] != 1 {
		t.Errorf("n=%d byType=%v", n, byType)
	}
}

func TestValidateRejectsBadStreams(t *testing.T) {
	cases := []struct {
		name  string
		input string
	}{
		{"empty", ""},
		{"not json", "hello\n"},
		{"unknown field", `{"seq":0,"at_ns":1,"type":"x","window":0,"subplan":-1,"query":-1,"bogus":1}` + "\n"},
		{"empty type", `{"seq":0,"at_ns":1,"type":"","window":0,"subplan":-1,"query":-1}` + "\n"},
		{"gap in seq", `{"seq":0,"at_ns":1,"type":"window.close","window":0,"subplan":-1,"query":-1}` + "\n" +
			`{"seq":2,"at_ns":2,"type":"window.close","window":1,"subplan":-1,"query":-1}` + "\n"},
		{"unregistered type", `{"seq":0,"at_ns":1,"type":"window.implode","window":0,"subplan":-1,"query":-1}` + "\n"},
	}
	for _, tc := range cases {
		if _, _, err := Validate(strings.NewReader(tc.input)); err == nil {
			t.Errorf("%s: Validate accepted a bad stream", tc.name)
		}
	}
	// Sequence may start anywhere, as long as it stays dense (the bounded
	// ring may have evicted a prefix before WriteJSONL).
	ok := `{"seq":7,"at_ns":1,"type":"window.close","window":0,"subplan":-1,"query":-1}` + "\n" +
		`{"seq":8,"at_ns":2,"type":"reuse.skip","window":1,"subplan":-1,"query":-1}` + "\n"
	if _, _, err := Validate(strings.NewReader(ok)); err != nil {
		t.Errorf("offset-start stream rejected: %v", err)
	}
}

type failAfter struct {
	n int
}

func (f *failAfter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, errors.New("sink full")
	}
	f.n--
	return len(p), nil
}

func TestSinkErrorIsSticky(t *testing.T) {
	sink := &failAfter{n: 1}
	l := New(sink, 8)
	l.Emit("a", 1, 0, -1, -1, nil)
	if err := l.Err(); err != nil {
		t.Fatalf("first emit errored: %v", err)
	}
	l.Emit("b", 2, 1, -1, -1, nil)
	if err := l.Err(); err == nil {
		t.Fatal("failing sink did not surface an error")
	}
	// The ring keeps recording past the sink failure.
	l.Emit("c", 3, 2, -1, -1, nil)
	if got := l.Len(); got != 3 {
		t.Errorf("Len() = %d, want 3", got)
	}
}

func TestNilLogNoOps(t *testing.T) {
	var l *Log
	if l.Enabled() {
		t.Error("nil log reports enabled")
	}
	l.Emit("a", 1, 0, -1, -1, nil)
	if l.Len() != 0 || l.Err() != nil || l.Events() != nil {
		t.Error("nil log returned data")
	}
	if err := l.WriteJSONL(&bytes.Buffer{}); err != nil {
		t.Errorf("nil WriteJSONL: %v", err)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		l.Emit("a", 1, 0, -1, -1, nil)
		_ = l.Len()
	}); allocs != 0 {
		t.Errorf("nil log allocates %v per run, want 0", allocs)
	}
}
