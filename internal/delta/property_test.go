// Property tests for delta-stream semantics through buffer.Log. They live
// in package delta_test because buffer imports delta.
package delta_test

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"ishare/internal/buffer"
	"ishare/internal/delta"
	"ishare/internal/mqo"
	"ishare/internal/value"
)

func ins(vals ...int64) delta.Tuple {
	row := make(value.Row, len(vals))
	for i, v := range vals {
		row[i] = value.Int(v)
	}
	return delta.Tuple{Row: row, Bits: mqo.Bitset(^uint64(0)), Sign: delta.Insert}
}

func del(vals ...int64) delta.Tuple {
	t := ins(vals...)
	t.Sign = delta.Delete
	return t
}

// canon sorts a materialized row multiset by deterministic key.
func canon(rows []value.Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = value.Key(r)
	}
	sort.Strings(out)
	return out
}

// throughLog appends the stream to a fresh log (in chunks of the given
// size) and materializes everything a reader observes.
func throughLog(t *testing.T, stream []delta.Tuple, chunk int) []value.Row {
	t.Helper()
	log := buffer.NewLog("prop")
	reader := log.NewReader()
	var seen []delta.Tuple
	for start := 0; start < len(stream); start += chunk {
		end := start + chunk
		if end > len(stream) {
			end = len(stream)
		}
		log.Append(stream[start:end]...)
		seen = append(seen, reader.ReadNew()...)
	}
	if reader.Pending() != 0 {
		t.Fatalf("reader left %d pending tuples", reader.Pending())
	}
	if log.Len() != len(stream) {
		t.Fatalf("log holds %d tuples, appended %d", log.Len(), len(stream))
	}
	return delta.Materialize(seen, -1)
}

// TestInsertDeleteReinsertRoundTrip: an insert→delete→re-insert sequence
// must materialize identically to a single insert, whether the stream
// passes through a log whole or in arbitrary chunks.
func TestInsertDeleteReinsertRoundTrip(t *testing.T) {
	stream := []delta.Tuple{ins(1, 10), del(1, 10), ins(1, 10), ins(2, 20)}
	want := canon(delta.Materialize([]delta.Tuple{ins(1, 10), ins(2, 20)}, -1))
	for chunk := 1; chunk <= len(stream); chunk++ {
		got := canon(throughLog(t, stream, chunk))
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("chunk %d: got %v want %v", chunk, got, want)
		}
	}
}

// TestUpdateAsDeleteInsertRoundTrip: modeling an update as delete+insert
// must materialize exactly like a stream that only ever inserted the final
// values.
func TestUpdateAsDeleteInsertRoundTrip(t *testing.T) {
	updates := []delta.Tuple{
		ins(1, 10), ins(2, 20),
		del(1, 10), ins(1, 11), // update row 1: 10 -> 11
		del(2, 20), ins(2, 22), // update row 2: 20 -> 22
	}
	direct := []delta.Tuple{ins(1, 11), ins(2, 22)}
	want := canon(delta.Materialize(direct, -1))
	for chunk := 1; chunk <= len(updates); chunk++ {
		got := canon(throughLog(t, updates, chunk))
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("chunk %d: got %v want %v", chunk, got, want)
		}
	}
}

// TestRandomStreamsChunkInvariant: random prefix-consistent streams
// materialize identically for every chunking of the log, and identically
// to delta.Apply's net counts.
func TestRandomStreamsChunkInvariant(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		var stream []delta.Tuple
		var live [][2]int64
		for len(stream) < 4+r.Intn(30) {
			if len(live) > 0 && r.Float64() < 0.35 {
				i := r.Intn(len(live))
				stream = append(stream, del(live[i][0], live[i][1]))
				live = append(live[:i], live[i+1:]...)
			} else {
				p := [2]int64{int64(r.Intn(5)), int64(r.Intn(5))}
				stream = append(stream, ins(p[0], p[1]))
				live = append(live, p)
			}
		}
		want := canon(delta.Materialize(stream, -1))
		if len(want) != len(live) {
			t.Fatalf("trial %d: materialized %d rows, %d live", trial, len(want), len(live))
		}
		for _, chunk := range []int{1, 2, 3, len(stream)} {
			got := canon(throughLog(t, stream, chunk))
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d chunk %d: got %v want %v", trial, chunk, got, want)
			}
		}
		counts := delta.Apply(stream, -1)
		total := 0
		for _, n := range counts {
			total += n
		}
		if total != len(live) {
			t.Fatalf("trial %d: Apply nets %d rows, %d live", trial, total, len(live))
		}
	}
}

// TestMaterializePerQueryBits: materialization respects the query bitset.
func TestMaterializePerQueryBits(t *testing.T) {
	a := ins(1)
	a.Bits = mqo.Bit(0)
	b := ins(2)
	b.Bits = mqo.Bit(1)
	stream := []delta.Tuple{a, b}
	if got := delta.Materialize(stream, 0); len(got) != 1 || got[0][0].I != 1 {
		t.Fatalf("query 0 sees %v", got)
	}
	if got := delta.Materialize(stream, 1); len(got) != 1 || got[0][0].I != 2 {
		t.Fatalf("query 1 sees %v", got)
	}
	if got := delta.Materialize(stream, -1); len(got) != 2 {
		t.Fatalf("all queries see %v", got)
	}
}
