package delta

import (
	"testing"

	"ishare/internal/mqo"
	"ishare/internal/value"
)

func row(v int64) value.Row { return value.Row{value.Int(v)} }

func TestSignString(t *testing.T) {
	if Insert.String() != "+" || Delete.String() != "-" {
		t.Error("sign rendering wrong")
	}
}

func TestApplyNetsOut(t *testing.T) {
	ts := []Tuple{
		{Row: row(1), Bits: mqo.Bit(0), Sign: Insert},
		{Row: row(1), Bits: mqo.Bit(0), Sign: Insert},
		{Row: row(1), Bits: mqo.Bit(0), Sign: Delete},
		{Row: row(2), Bits: mqo.Bit(0), Sign: Insert},
		{Row: row(2), Bits: mqo.Bit(0), Sign: Delete},
	}
	counts := Apply(ts, 0)
	if len(counts) != 1 {
		t.Fatalf("counts = %v", counts)
	}
	for _, n := range counts {
		if n != 1 {
			t.Errorf("count = %d, want 1", n)
		}
	}
}

func TestApplyFiltersByQuery(t *testing.T) {
	ts := []Tuple{
		{Row: row(1), Bits: mqo.Bit(0), Sign: Insert},
		{Row: row(2), Bits: mqo.Bit(1), Sign: Insert},
		{Row: row(3), Bits: mqo.Bit(0).Union(mqo.Bit(1)), Sign: Insert},
	}
	if got := len(Apply(ts, 0)); got != 2 {
		t.Errorf("q0 rows = %d", got)
	}
	if got := len(Apply(ts, 1)); got != 2 {
		t.Errorf("q1 rows = %d", got)
	}
	if got := len(Apply(ts, -1)); got != 3 {
		t.Errorf("all rows = %d", got)
	}
}

func TestMaterializeMultiplicity(t *testing.T) {
	ts := []Tuple{
		{Row: row(7), Bits: mqo.Bit(0), Sign: Insert},
		{Row: row(7), Bits: mqo.Bit(0), Sign: Insert},
	}
	rows := Materialize(ts, 0)
	if len(rows) != 2 {
		t.Errorf("multiplicity lost: %v", rows)
	}
}

func TestTupleString(t *testing.T) {
	tup := Tuple{Row: row(5), Bits: mqo.Bit(2), Sign: Delete}
	if got := tup.String(); got != "-{2}5" {
		t.Errorf("String = %q", got)
	}
}
