// Package delta defines the tuples flowing through the shared incremental
// engine: rows annotated with a query-validity bitvector (SharedDB) and an
// insert/delete sign (incremental view maintenance). Updates are modeled as
// a delete plus an insert.
package delta

import (
	"fmt"

	"ishare/internal/mqo"
	"ishare/internal/value"
)

// Sign marks a tuple as an insertion or a deletion.
type Sign int8

// Tuple signs.
const (
	Insert Sign = 1
	Delete Sign = -1
)

// String renders the sign as "+" or "-".
func (s Sign) String() string {
	if s == Delete {
		return "-"
	}
	return "+"
}

// Tuple is one change record.
type Tuple struct {
	// Row holds the column values.
	Row value.Row
	// Bits says which queries the tuple is valid for.
	Bits mqo.Bitset
	// Sign distinguishes insertions from deletions.
	Sign Sign
}

// String renders the tuple for diagnostics.
func (t Tuple) String() string {
	return fmt.Sprintf("%s%s%s", t.Sign, t.Bits, t.Row)
}

// Chunks iterates a delta stream in windows of at most size tuples,
// preserving order — the executor's chunked delta iteration. A size < 1
// yields the whole stream as one window. Windows alias the input slice;
// no tuples are copied.
type Chunks struct {
	ts   []Tuple
	size int
}

// NewChunks returns an iterator over ts in windows of size.
func NewChunks(ts []Tuple, size int) Chunks {
	if size < 1 {
		size = len(ts)
	}
	return Chunks{ts: ts, size: size}
}

// Next returns the next window, or ok=false when the stream is exhausted.
func (c *Chunks) Next() (win []Tuple, ok bool) {
	if len(c.ts) == 0 {
		return nil, false
	}
	n := c.size
	if n > len(c.ts) {
		n = len(c.ts)
	}
	win, c.ts = c.ts[:n], c.ts[n:]
	return win, true
}

// Apply folds a stream of deltas into a multiset of rows, returning the net
// row counts keyed by value.Key. It is the reference semantics used to
// check that incremental execution converges to batch results.
func Apply(tuples []Tuple, q int) map[string]int {
	counts := make(map[string]int)
	rows := make(map[string]value.Row)
	for _, t := range tuples {
		if q >= 0 && !t.Bits.Has(q) {
			continue
		}
		k := value.Key(t.Row)
		counts[k] += int(t.Sign)
		rows[k] = t.Row
		if counts[k] == 0 {
			delete(counts, k)
		}
	}
	return counts
}

// Materialize returns the net rows (with multiplicity) for query q, or for
// all queries when q is negative. Row order is unspecified.
func Materialize(tuples []Tuple, q int) []value.Row {
	counts := make(map[string]int)
	rows := make(map[string]value.Row)
	for _, t := range tuples {
		if q >= 0 && !t.Bits.Has(q) {
			continue
		}
		k := value.Key(t.Row)
		counts[k] += int(t.Sign)
		rows[k] = t.Row
	}
	var out []value.Row
	for k, n := range counts {
		for i := 0; i < n; i++ {
			out = append(out, rows[k])
		}
	}
	return out
}
