package ishare

// The benchmarks below regenerate every table and figure of the paper's
// evaluation (§5). Each bench runs the corresponding experiment driver
// end-to-end — planning with the cost model and measuring the execution
// engine — at a laptop scale factor, and reports the headline quantities as
// custom benchmark metrics (work units and optimization milliseconds) so
// `go test -bench` output doubles as the reproduction record. See
// EXPERIMENTS.md for the paper-vs-measured discussion.

import (
	"fmt"
	"testing"
	"time"

	"ishare/internal/cost"
	"ishare/internal/decompose"
	"ishare/internal/exec"
	"ishare/internal/experiments"
	"ishare/internal/mqo"
	"ishare/internal/opt"
	"ishare/internal/pace"
	"ishare/internal/tpch"
)

// benchConfig is the shared experiment scale for benchmarks.
func benchConfig() experiments.Config {
	return experiments.Config{
		SF:        0.02,
		Seed:      1,
		MaxPace:   40,
		DNFBudget: 20 * time.Second,
	}
}

func reportApproaches(b *testing.B, names []opt.Approach, totals []int64) {
	b.Helper()
	for i, a := range names {
		b.ReportMetric(float64(totals[i]), "work_"+metricName(a))
	}
}

func metricName(a opt.Approach) string {
	switch a {
	case opt.NoShareUniform:
		return "nsu"
	case opt.NoShareNonuniform:
		return "nsn"
	case opt.ShareUniform:
		return "su"
	case opt.IShareNoUnshare:
		return "ishare_nounshare"
	case opt.IShare:
		return "ishare"
	case opt.IShareBruteForce:
		return "ishare_bf"
	default:
		return "unknown"
	}
}

// BenchmarkFigure9 regenerates Figure 9: total work under random relative
// constraints for the four approaches over the 22 adapted TPC-H queries.
func BenchmarkFigure9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure9(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		reportApproaches(b, r.Approaches, r.Mean)
	}
}

// BenchmarkFigure10 regenerates Figure 10: shared vs independent batch
// execution.
func BenchmarkFigure10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure10(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.SharedTotal), "work_shared")
		b.ReportMetric(float64(r.IndependentTotal), "work_independent")
		b.ReportMetric(100*r.Reduction(), "reduction_pct")
	}
}

// BenchmarkFigure11 regenerates Figure 11: uniform relative constraints over
// all 22 queries (the tightest row, rel 0.1, is reported).
func BenchmarkFigure11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure11(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		reportApproaches(b, r.Approaches, r.Total[len(r.Total)-1])
	}
}

// BenchmarkFigure12 regenerates Figure 12: uniform constraints over the
// overlapping 10-query subset.
func BenchmarkFigure12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure12(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		reportApproaches(b, r.Approaches, r.Total[len(r.Total)-1])
	}
}

// BenchmarkTable1 regenerates Table 1: missed latencies for the random and
// uniform constraint tests (mean relative misses reported per approach).
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := benchConfig()
		f9, err := experiments.Figure9(cfg)
		if err != nil {
			b.Fatal(err)
		}
		f11, err := experiments.Figure11(cfg)
		if err != nil {
			b.Fatal(err)
		}
		f12, err := experiments.Figure12(cfg)
		if err != nil {
			b.Fatal(err)
		}
		t1 := experiments.Table1(f9, f11, f12)
		for j, a := range t1.Approaches {
			b.ReportMetric(100*t1.Random[j].MeanRel, "rndmiss_pct_"+metricName(a))
			b.ReportMetric(100*t1.Uniform[j].MeanRel, "unimiss_pct_"+metricName(a))
		}
	}
}

// BenchmarkFigure13 regenerates Figure 13 and Table 2: manually tuned pace
// configurations at relative goal 0.1.
func BenchmarkFigure13(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure13(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		reportApproaches(b, r.Approaches, r.Total)
	}
}

// BenchmarkTable2 reports the tuned run's missed latencies.
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure13(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		for j, a := range r.Approaches {
			b.ReportMetric(100*r.Miss[j].MeanRel, "miss_pct_"+metricName(a))
		}
	}
}

// BenchmarkFigure14 regenerates Figure 14: the decomposition study over the
// sharing-friendly 20-query set (tightest constraint row reported).
func BenchmarkFigure14(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure14(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		reportApproaches(b, r.Approaches, r.Total[len(r.Total)-1])
	}
}

// BenchmarkTable3 reports the decomposition run's missed latencies.
func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure14(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		for j, a := range r.Approaches {
			b.ReportMetric(100*r.Miss[j].MeanRel, "miss_pct_"+metricName(a))
		}
	}
}

// BenchmarkFigure15 regenerates Figure 15: optimization overhead vs max
// pace, memoized vs simulate-from-scratch.
func BenchmarkFigure15(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure15(benchConfig(), []int{10, 25, 50})
		if err != nil {
			b.Fatal(err)
		}
		last := len(r.MaxPaces) - 1
		b.ReportMetric(float64(r.WithMemo[last].Milliseconds()), "memo_ms")
		if r.WithoutMemo[last] == experiments.DNF {
			b.ReportMetric(-1, "nomemo_ms")
		} else {
			b.ReportMetric(float64(r.WithoutMemo[last].Milliseconds()), "nomemo_ms")
		}
	}
}

// BenchmarkFigure16 regenerates Figure 16: clustering vs brute-force
// decomposition search time as the shared query count grows.
func BenchmarkFigure16(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure16(benchConfig(), []int{2, 4, 6})
		if err != nil {
			b.Fatal(err)
		}
		last := len(r.QueryCounts) - 1
		b.ReportMetric(float64(r.Clustering[last].Microseconds()), "cluster_us")
		b.ReportMetric(float64(r.BruteForce[last].Microseconds()), "bruteforce_us")
	}
}

// BenchmarkFigure17a/b/c regenerate the incrementability micro-benchmarks
// (PairA: both incrementable; PairB: mixed; PairC: the paper's Q_A/Q_B).
func benchFigure17(b *testing.B, label string) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure17(benchConfig(), label)
		if err != nil {
			b.Fatal(err)
		}
		reportApproaches(b, r.Approaches, r.Total[len(r.Total)-1])
	}
}

func BenchmarkFigure17a(b *testing.B) { benchFigure17(b, "PairA") }
func BenchmarkFigure17b(b *testing.B) { benchFigure17(b, "PairB") }
func BenchmarkFigure17c(b *testing.B) { benchFigure17(b, "PairC") }

// BenchmarkAblationPartialDecomposition compares whole-subplan decomposition
// against partial (subtree) decomposition — the design choice of §4.3.
func BenchmarkAblationPartialDecomposition(b *testing.B) {
	cfg := benchConfig()
	w, err := experiments.NewWorkload(cfg, []string{"Q15", "Q17"}, true)
	if err != nil {
		b.Fatal(err)
	}
	abs, err := opt.AbsoluteConstraints(w.Queries, experiments.UniformRel(len(w.Queries), 0.1))
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		for _, partial := range []bool{false, true} {
			d := &decompose.Decomposer{
				Queries:     w.Queries,
				Constraints: abs,
				Opts:        decompose.Options{MaxPace: cfg.MaxPace, Unshare: true, Partial: partial},
			}
			res, err := d.Optimize()
			if err != nil {
				b.Fatal(err)
			}
			name := "work_whole"
			if partial {
				name = "work_partial"
			}
			b.ReportMetric(res.Eval.Total, name)
		}
	}
}

// BenchmarkAblationCalibration measures the §3.2 recurring-query feedback
// loop: the second recurrence is planned with per-subplan factors learned
// from the first, and the bench reports the mean relative missed latency
// before and after calibration.
func BenchmarkAblationCalibration(b *testing.B) {
	cfg := benchConfig()
	w, err := experiments.NewWorkload(cfg, []string{"Q1", "Q3", "Q5", "Q10", "Q15", "Q18"}, false)
	if err != nil {
		b.Fatal(err)
	}
	rel := experiments.UniformRel(len(w.Queries), 0.2)
	abs, err := opt.AbsoluteConstraints(w.Queries, rel)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		req := opt.Request{Queries: w.Queries, Constraints: abs, MaxPace: cfg.MaxPace}
		p1, err := opt.Plan(opt.IShareNoUnshare, req)
		if err != nil {
			b.Fatal(err)
		}
		o1, calib, err := opt.ExecuteWithCalibration(p1, w.Data, len(w.Queries))
		if err != nil {
			b.Fatal(err)
		}
		// The calibrated model estimates in engine units, so the second
		// recurrence states its goals against the measured batch finals —
		// the paper's "adjust the constraint based on prior executions".
		req.Calibration = calib
		absMeasured := make([]float64, len(w.Queries))
		for q := range w.Queries {
			absMeasured[q] = rel[q] * float64(w.BatchFinal[q])
		}
		req.Constraints = absMeasured
		p2, err := opt.Plan(opt.IShareNoUnshare, req)
		if err != nil {
			b.Fatal(err)
		}
		req.Constraints = abs
		o2, err := opt.Execute(p2, w.Data, len(w.Queries))
		if err != nil {
			b.Fatal(err)
		}
		missRate := func(o *opt.Outcome) float64 {
			var sum float64
			for q := range w.Queries {
				goal := rel[q] * float64(w.BatchFinal[q])
				if goal > 0 {
					if miss := float64(o.QueryFinal[q]) - goal; miss > 0 {
						sum += miss / goal
					}
				}
			}
			return 100 * sum / float64(len(w.Queries))
		}
		b.ReportMetric(missRate(o1), "miss_pct_raw")
		b.ReportMetric(missRate(o2), "miss_pct_calibrated")
		b.ReportMetric(float64(o2.TotalWork), "work_calibrated")
	}
}

// BenchmarkUpdateStream measures incremental maintenance cost over an
// update-bearing change stream (deletes + inserts) vs the insert-only
// stream — the deletion amplification underlying the paper's Figure 1.
func BenchmarkUpdateStream(b *testing.B) {
	cfg := benchConfig()
	cat, err := tpch.NewCatalog(cfg.SF)
	if err != nil {
		b.Fatal(err)
	}
	qs, err := tpch.ByName("Q1", "Q15", "Q18")
	if err != nil {
		b.Fatal(err)
	}
	bound, err := tpch.Bind(qs, cat, false)
	if err != nil {
		b.Fatal(err)
	}
	run := func(frac float64) int64 {
		sp, err := mqo.Build(bound)
		if err != nil {
			b.Fatal(err)
		}
		g, err := mqo.Extract(sp)
		if err != nil {
			b.Fatal(err)
		}
		r, err := exec.NewDeltaRunner(g, tpch.GenerateWithUpdates(cfg.SF, cfg.Seed, frac))
		if err != nil {
			b.Fatal(err)
		}
		paces := make([]int, len(g.Subplans))
		for i := range paces {
			paces[i] = 10
		}
		rep, err := r.Run(paces)
		if err != nil {
			b.Fatal(err)
		}
		return rep.TotalWork
	}
	for i := 0; i < b.N; i++ {
		b.ReportMetric(float64(run(0)), "work_insert_only")
		b.ReportMetric(float64(run(0.2)), "work_20pct_updates")
	}
}

// benchBind binds the named TPC-H queries into a shared subplan graph.
func benchBind(b *testing.B, cfg experiments.Config, names []string) *mqo.Graph {
	b.Helper()
	cat, err := tpch.NewCatalog(cfg.SF)
	if err != nil {
		b.Fatal(err)
	}
	qs, err := tpch.ByName(names...)
	if err != nil {
		b.Fatal(err)
	}
	bound, err := tpch.Bind(qs, cat, false)
	if err != nil {
		b.Fatal(err)
	}
	sp, err := mqo.Build(bound)
	if err != nil {
		b.Fatal(err)
	}
	g, err := mqo.Extract(sp)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// BenchmarkModelEvaluate measures one cost-model evaluation on a six-query
// shared graph with a wandering pace vector, mixing memo hits and misses —
// the inner loop of the greedy search.
func BenchmarkModelEvaluate(b *testing.B) {
	cfg := benchConfig()
	g := benchBind(b, cfg, []string{"Q1", "Q3", "Q5", "Q10", "Q15", "Q18"})
	m := cost.NewModel(g)
	paces := pace.Ones(len(g.Subplans))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		paces[i%len(paces)] = 1 + i%25
		if _, err := m.Evaluate(paces); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGreedySearch runs the full greedy pace search on the
// Figure-15-scale workload (all 22 queries, relative constraint 0.01) with a
// cold memo table per iteration, at several candidate-evaluation worker
// counts (workers=1 is the sequential search; all counts return identical
// pace configurations).
func BenchmarkGreedySearch(b *testing.B) {
	cfg := benchConfig()
	cat, err := tpch.NewCatalog(cfg.SF)
	if err != nil {
		b.Fatal(err)
	}
	qs, err := tpch.ByName(experiments.AllQueryNames()...)
	if err != nil {
		b.Fatal(err)
	}
	bound, err := tpch.Bind(qs, cat, false)
	if err != nil {
		b.Fatal(err)
	}
	abs, err := opt.AbsoluteConstraints(bound, experiments.UniformRel(len(bound), 0.01))
	if err != nil {
		b.Fatal(err)
	}
	sp, err := mqo.Build(bound)
	if err != nil {
		b.Fatal(err)
	}
	g, err := mqo.Extract(sp)
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				m := cost.NewModel(g)
				o, err := pace.NewOptimizer(m, abs, 25)
				if err != nil {
					b.Fatal(err)
				}
				o.Workers = workers
				if _, _, err := o.Greedy(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAdmit measures online admission onto a live shared plan: "warm"
// admits Q22 into a running {Q1, Q6} plan — matching state-identical
// subplans against the previous revision and transplanting their memoized
// cost rows before the pace search — while "cold" plans the same final
// three-query set from scratch. Q22 shares no table with the lineitem
// pair, so every existing subplan carries over and the warm search only
// simulates the admitted chain. Both searches walk the same path and pick
// the same pace vector; the memo transplant is the only difference, so the
// warm/cold gap is the cost of the simulations the transplant avoids
// (sims_warm vs sims_cold report the per-admission simulation counts).
func BenchmarkAdmit(b *testing.B) {
	cfg := benchConfig()
	cat, err := tpch.NewCatalog(cfg.SF)
	if err != nil {
		b.Fatal(err)
	}
	qs, err := tpch.ByName("Q1", "Q6", "Q22")
	if err != nil {
		b.Fatal(err)
	}
	bound, err := tpch.Bind(qs, cat, false)
	if err != nil {
		b.Fatal(err)
	}
	abs, err := opt.AbsoluteConstraints(bound, experiments.UniformRel(len(bound), 0.5))
	if err != nil {
		b.Fatal(err)
	}
	const maxPace = 25

	b.Run("warm", func(b *testing.B) {
		live, err := opt.NewLive(opt.Request{
			Queries: bound[:2], Constraints: abs[:2], MaxPace: maxPace,
		}, nil)
		if err != nil {
			b.Fatal(err)
		}
		var sims int64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			slot, rep, err := live.Admit(bound[2], abs[2])
			if err != nil {
				b.Fatal(err)
			}
			sims = rep.Sims
			b.StopTimer()
			if _, err := live.Retire(slot); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
		b.ReportMetric(float64(sims), "sims_warm")
	})
	b.Run("cold", func(b *testing.B) {
		var sims int64
		for i := 0; i < b.N; i++ {
			cold, err := opt.NewLive(opt.Request{
				Queries: bound, Constraints: abs, MaxPace: maxPace,
			}, nil)
			if err != nil {
				b.Fatal(err)
			}
			sims = cold.Model.Sims
		}
		b.ReportMetric(float64(sims), "sims_cold")
	})
}

// BenchmarkJoinProbe measures the engine's symmetric-hash-join hot path: a
// join-heavy three-query shared plan executed incrementally at pace 8, where
// per-tuple key evaluation, probing and emission dominate.
func BenchmarkJoinProbe(b *testing.B) {
	cfg := benchConfig()
	g := benchBind(b, cfg, []string{"Q3", "Q5", "Q10"})
	data := tpch.Generate(cfg.SF, cfg.Seed)
	paces := make([]int, len(g.Subplans))
	for i := range paces {
		paces[i] = 8
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := exec.NewRunner(g, data)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := r.Run(paces); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineThroughput measures raw shared-execution throughput: the
// 22-query shared plan in batch over the generated dataset.
func BenchmarkEngineThroughput(b *testing.B) {
	cfg := benchConfig()
	w, err := experiments.NewWorkload(cfg, experiments.AllQueryNames(), false)
	if err != nil {
		b.Fatal(err)
	}
	abs, err := opt.AbsoluteConstraints(w.Queries, experiments.UniformRel(len(w.Queries), 1.0))
	if err != nil {
		b.Fatal(err)
	}
	p, err := opt.Plan(opt.ShareUniform, opt.Request{Queries: w.Queries, Constraints: abs, MaxPace: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := opt.Execute(p, w.Data, len(w.Queries)); err != nil {
			b.Fatal(err)
		}
	}
}
