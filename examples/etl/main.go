// ETL: recurring multi-table jobs over a continuously loaded warehouse —
// the paper's second motivating workload. A fact stream joins two dimension
// tables; three downstream jobs with different deadlines consume the same
// join. The example shows the latency/total-work trade-off as deadlines
// tighten.
package main

import (
	"fmt"
	"math/rand"
	"os"

	"ishare"
)

func main() {
	data := warehouse()
	for _, rel := range []float64{1.0, 0.5, 0.2, 0.1} {
		eng := buildEngine()
		// All three ETL outputs share the fact-dimension join; only the
		// reconciliation feed is deadline-sensitive.
		eng.MustAddQuery("daily_sales",
			`SELECT d_region, SUM(f_amount) AS sales
			 FROM facts, dims WHERE f_dim = d_id GROUP BY d_region`, 1.0)
		eng.MustAddQuery("category_counts",
			`SELECT d_category, COUNT(*) AS n
			 FROM facts, dims WHERE f_dim = d_id GROUP BY d_category`, 1.0)
		eng.MustAddQuery("reconciliation",
			`SELECT d_region, SUM(f_amount) AS rec
			 FROM facts, dims WHERE f_dim = d_id AND f_flag = 1 GROUP BY d_region`, rel)

		plan, err := eng.Optimize(ishare.Options{MaxPace: 40})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		report, err := eng.Run(plan, data)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("reconciliation deadline %4.0f%% of batch: total work %8d, reconciliation final work %6d\n",
			rel*100, report.TotalWork, report.FinalWork["reconciliation"])
	}
	fmt.Println("\nTighter reconciliation deadlines buy latency with extra total work,")
	fmt.Println("but only on the subplans reconciliation actually needs — the slack")
	fmt.Println("jobs keep running lazily.")
}

func buildEngine() *ishare.Engine {
	eng := ishare.NewEngine()
	eng.MustCreateTable(ishare.TableSchema{
		Name: "facts",
		Columns: []ishare.Column{
			{Name: "f_id", Type: ishare.Int},
			{Name: "f_dim", Type: ishare.Int, Distinct: 200},
			{Name: "f_amount", Type: ishare.Float},
			{Name: "f_flag", Type: ishare.Int, Distinct: 2, Min: 0, Max: 1},
		},
		ExpectedRows: 15000,
	})
	eng.MustCreateTable(ishare.TableSchema{
		Name: "dims",
		Columns: []ishare.Column{
			{Name: "d_id", Type: ishare.Int, Distinct: 200},
			{Name: "d_region", Type: ishare.String, Distinct: 6},
			{Name: "d_category", Type: ishare.String, Distinct: 20},
		},
		ExpectedRows: 200,
	})
	return eng
}

func warehouse() map[string][]ishare.Row {
	rng := rand.New(rand.NewSource(2024))
	regions := []string{"na", "emea", "apac", "latam", "anz", "row"}
	var dims []ishare.Row
	for i := 0; i < 200; i++ {
		dims = append(dims, ishare.Row{
			i, regions[rng.Intn(len(regions))], fmt.Sprintf("cat-%02d", rng.Intn(20)),
		})
	}
	var facts []ishare.Row
	for i := 0; i < 15000; i++ {
		facts = append(facts, ishare.Row{
			i, rng.Intn(200), float64(rng.Intn(100000)) / 100, rng.Intn(2),
		})
	}
	return map[string][]ishare.Row{"facts": facts, "dims": dims}
}
