// Recurring: the full scheduled-query lifecycle over several trigger
// windows (e.g. days). Day 1 optimizes from catalog statistics and runs;
// the run's measurements calibrate the cost model and the optimized plan is
// persisted; later days load the pinned plan, run it, and periodically
// re-optimize with the calibrated model — the paper's §3.2 feedback for
// recurring queries.
package main

import (
	"fmt"
	"math/rand"
	"os"

	"ishare"
)

func buildEngine() *ishare.Engine {
	eng := ishare.NewEngine()
	eng.MustCreateTable(ishare.TableSchema{
		Name: "events",
		Columns: []ishare.Column{
			{Name: "device", Type: ishare.Int, Distinct: 250},
			{Name: "kind", Type: ishare.String, Distinct: 8},
			{Name: "reading", Type: ishare.Float, Distinct: 1000, Min: 0, Max: 100},
		},
		ExpectedRows: 8000,
	})
	eng.MustAddQuery("device_avg",
		"SELECT device, AVG(reading) AS avg_r FROM events GROUP BY device", 1.0)
	eng.MustAddQuery("alerts",
		"SELECT device, COUNT(*) AS n FROM events WHERE reading > 95 GROUP BY device", 0.1)
	eng.MustAddQuery("peak",
		`SELECT MAX(t) FROM (SELECT SUM(reading) AS t FROM events GROUP BY device) x`, 0.5)
	return eng
}

func dayData(day int64) map[string][]ishare.Row {
	rng := rand.New(rand.NewSource(1000 + day))
	kinds := []string{"temp", "rpm", "volt", "amp", "hum", "lux", "psi", "ph"}
	var rows []ishare.Row
	for i := 0; i < 8000; i++ {
		rows = append(rows, ishare.Row{
			rng.Intn(250),
			kinds[rng.Intn(len(kinds))],
			float64(rng.Intn(10000)) / 100,
		})
	}
	return map[string][]ishare.Row{"events": rows}
}

func main() {
	eng := buildEngine()

	// Day 1: optimize from catalog statistics, run, learn.
	plan, err := eng.Optimize(ishare.Options{MaxPace: 40})
	check(err)
	rep, calib, err := eng.RunAndCalibrate(plan, dayData(1))
	check(err)
	fmt.Printf("day 1: total work %d (optimized from statistics; learned %d calibration factors)\n",
		rep.TotalWork, len(calib))

	// Re-optimize with the calibrated model and pin the plan.
	plan2, err := eng.Optimize(ishare.Options{MaxPace: 40, Calibration: calib})
	check(err)
	pinned, err := plan2.Save()
	check(err)
	fmt.Printf("pinned plan: %d bytes of JSON\n", len(pinned))

	// Days 2..4: load the pinned plan — no optimization cost — and run.
	for day := int64(2); day <= 4; day++ {
		loaded, err := eng.LoadPlan(pinned)
		check(err)
		r, err := eng.RunParallel(loaded, dayData(day), 0)
		check(err)
		fmt.Printf("day %d: total work %d, alerts final work %d, %d alert rows\n",
			day, r.TotalWork, r.FinalWork["alerts"], len(r.Results("alerts")))
	}
	fmt.Println("\nThe pinned plan keeps the alerts panel's tight deadline day after")
	fmt.Println("day while the slack queries stay lazy; re-run Optimize with fresh")
	fmt.Println("calibration whenever the data distribution drifts.")
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
