// Decomposition: the paper's §4 in action. Two queries with the
// non-incrementable MAX-over-SUM shape (Q15's) share a subplan but filter
// partially overlapping slices of the stream. With slack deadlines sharing
// wins; as deadlines tighten, iShare decides whether keeping the subplan
// shared (and eager) still pays, comparing against the never-unshare
// ablation.
package main

import (
	"fmt"
	"math/rand"
	"os"

	"ishare"
)

func buildEngine() *ishare.Engine {
	eng := ishare.NewEngine()
	eng.MustCreateTable(ishare.TableSchema{
		Name: "sales",
		Columns: []ishare.Column{
			{Name: "supplier", Type: ishare.Int, Distinct: 300},
			{Name: "day", Type: ishare.Int, Distinct: 600, Min: 0, Max: 599},
			{Name: "amount", Type: ishare.Float},
		},
		ExpectedRows: 6000,
	})
	return eng
}

// The two reports compute the top supplier revenue over overlapping date
// windows — structurally identical, different predicates.
const (
	reportA = `SELECT MAX(rev) AS top FROM
	  (SELECT SUM(amount) AS rev FROM sales WHERE day >= 0 AND day < 400 GROUP BY supplier) t`
	reportB = `SELECT MAX(rev) AS top FROM
	  (SELECT SUM(amount) AS rev FROM sales WHERE day >= 200 AND day < 600 GROUP BY supplier) t`
)

func main() {
	data := salesStream()
	fmt.Println("two MAX-over-SUM reports over overlapping windows ([0,400) vs [200,600))")
	fmt.Printf("%-10s %-22s %12s %14s\n", "deadline", "variant", "total work", "shared ops")
	for _, rel := range []float64{1.0, 0.1} {
		for _, v := range []struct {
			label    string
			approach ishare.Approach
		}{
			{"iShare (w/o unshare)", ishare.IShareNoUnshare},
			{"iShare (w/ unshare)", ishare.IShare},
		} {
			eng := buildEngine()
			eng.MustAddQuery("reportA", reportA, rel)
			eng.MustAddQuery("reportB", reportB, rel)
			plan, err := eng.Optimize(ishare.Options{Approach: v.approach, MaxPace: 50})
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			rep, err := eng.Run(plan, data)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("%-10.0f %-22s %12d %14d\n", rel*100, v.label, rep.TotalWork, plan.SharedOperators())
		}
	}
	fmt.Println("\nWith slack (100%) the subplan stays shared. Under the tight deadline")
	fmt.Println("the shared plan must maintain the MAX eagerly over both windows'")
	fmt.Println("retractions; iShare weighs that churn against re-reading the stream")
	fmt.Println("twice and unshares only when it pays (shared ops drop to zero).")
}

func salesStream() map[string][]ishare.Row {
	rng := rand.New(rand.NewSource(5))
	var rows []ishare.Row
	for i := 0; i < 6000; i++ {
		rows = append(rows, ishare.Row{
			rng.Intn(300), rng.Intn(600), float64(rng.Intn(10000)) / 100,
		})
	}
	return map[string][]ishare.Row{"sales": rows}
}
