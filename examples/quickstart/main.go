// Quickstart: register a table, schedule two queries with different latency
// goals, optimize them together, and run over a day's worth of data.
package main

import (
	"fmt"
	"math/rand"
	"os"

	"ishare"
)

func main() {
	eng := ishare.NewEngine()
	eng.MustCreateTable(ishare.TableSchema{
		Name: "orders",
		Columns: []ishare.Column{
			{Name: "o_id", Type: ishare.Int},
			{Name: "o_customer", Type: ishare.String, Distinct: 100},
			{Name: "o_amount", Type: ishare.Float},
			{Name: "o_priority", Type: ishare.Int, Distinct: 5, Min: 1, Max: 5},
		},
		ExpectedRows: 5000,
	})

	// Two scheduled reports over the same stream. The overnight revenue
	// rollup can take its time (relative constraint 1.0 = batch latency is
	// fine); the urgent-orders report is due right after the data is
	// complete (0.1 = a tenth of its batch latency).
	eng.MustAddQuery("revenue",
		"SELECT o_customer, SUM(o_amount) AS revenue FROM orders GROUP BY o_customer", 1.0)
	eng.MustAddQuery("urgent",
		"SELECT o_customer, COUNT(*) AS n FROM orders WHERE o_priority = 1 GROUP BY o_customer", 0.1)

	plan, err := eng.Optimize(ishare.Options{})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println("-- optimized plan --")
	plan.Explain(os.Stdout)

	// A day's worth of synthetic orders, in arrival order.
	rng := rand.New(rand.NewSource(7))
	data := map[string][]ishare.Row{}
	for i := 0; i < 5000; i++ {
		data["orders"] = append(data["orders"], ishare.Row{
			i,
			fmt.Sprintf("customer-%02d", rng.Intn(100)),
			float64(rng.Intn(500)) + 0.99,
			1 + rng.Intn(5),
		})
	}

	report, err := eng.Run(plan, data)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("\ntotal work: %d units\n", report.TotalWork)
	for _, q := range eng.QueryNames() {
		fmt.Printf("%-8s final work %6d units, %d result rows\n",
			q, report.FinalWork[q], len(report.Results(q)))
	}
	fmt.Println("\nfirst urgent-orders rows:")
	for i, row := range report.Results("urgent") {
		if i == 5 {
			break
		}
		fmt.Printf("  %v\n", row)
	}
}
