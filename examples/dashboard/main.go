// Dashboard: the paper's motivating scenario — many recurring dashboard
// reports over the daily click stream, each with its own deadline. Some
// panels are due minutes after midnight, others any time before the morning
// stand-up. The example compares executing the panel queries separately
// against iShare's shared, slack-aware plan.
package main

import (
	"fmt"
	"math/rand"
	"os"

	"ishare"
)

const days = 1

func buildEngine() *ishare.Engine {
	eng := ishare.NewEngine()
	eng.MustCreateTable(ishare.TableSchema{
		Name: "clicks",
		Columns: []ishare.Column{
			{Name: "user_id", Type: ishare.Int, Distinct: 400},
			{Name: "page", Type: ishare.String, Distinct: 50},
			{Name: "country", Type: ishare.String, Distinct: 10},
			{Name: "ms", Type: ishare.Float, Distinct: 1000, Min: 1, Max: 5000},
			{Name: "purchase", Type: ishare.Float},
		},
		ExpectedRows: 20000,
	})
	return eng
}

// panels are the dashboard queries and their deadlines: the relative
// constraint is the fraction of batch latency each panel tolerates.
var panels = []struct {
	name string
	sql  string
	rel  float64
}{
	{"traffic_by_page",
		"SELECT page, COUNT(*) AS views FROM clicks GROUP BY page", 0.1},
	{"traffic_by_country",
		"SELECT country, COUNT(*) AS views FROM clicks GROUP BY country", 0.1},
	{"revenue_by_page",
		"SELECT page, SUM(purchase) AS revenue FROM clicks GROUP BY page", 0.5},
	{"slowest_pages",
		"SELECT page, AVG(ms) AS avg_ms FROM clicks GROUP BY page", 1.0},
	{"top_spender_level",
		`SELECT MAX(user_total) AS top FROM
		   (SELECT SUM(purchase) AS user_total FROM clicks GROUP BY user_id) t`, 1.0},
}

func main() {
	data := clickStream()

	fmt.Println("scheduled dashboard panels over the daily click stream:")
	for _, p := range panels {
		fmt.Printf("  %-20s deadline %.0f%% of batch latency\n", p.name, p.rel*100)
	}
	fmt.Println()

	for _, approach := range []ishare.Approach{ishare.NoShareUniform, ishare.ShareUniform, ishare.IShare} {
		eng := buildEngine()
		for _, p := range panels {
			eng.MustAddQuery(p.name, p.sql, p.rel)
		}
		plan, err := eng.Optimize(ishare.Options{Approach: approach, MaxPace: 40})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		report, err := eng.Run(plan, data)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("%-22s total work %8d units (jobs: %d, shared operators: %d)\n",
			approach, report.TotalWork, plan.Jobs(), plan.SharedOperators())
	}
	fmt.Println("\niShare shares the click scan and the per-page aggregates across")
	fmt.Println("panels while letting the slack panels run lazily — the eager panes")
	fmt.Println("no longer drag the whole dashboard's plan with them.")
}

func clickStream() map[string][]ishare.Row {
	rng := rand.New(rand.NewSource(99))
	pages := make([]string, 50)
	for i := range pages {
		pages[i] = fmt.Sprintf("/page/%02d", i)
	}
	countries := []string{"US", "DE", "JP", "BR", "IN", "FR", "GB", "CA", "AU", "NL"}
	var rows []ishare.Row
	for i := 0; i < 20000*days; i++ {
		purchase := 0.0
		if rng.Intn(20) == 0 {
			purchase = float64(rng.Intn(20000)) / 100
		}
		rows = append(rows, ishare.Row{
			rng.Intn(400),
			pages[rng.Intn(len(pages))],
			countries[rng.Intn(len(countries))],
			float64(1 + rng.Intn(5000)),
			purchase,
		})
	}
	return map[string][]ishare.Row{"clicks": rows}
}
