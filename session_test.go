package ishare

import "testing"

// TestSessionProfileAndDrift exercises the facade's observability surface:
// a stepped session records one profile sample per fired subplan per
// window, baselined against the cost model's batch-pace prediction, and
// admission re-baselines the profiler for the new plan revision.
func TestSessionProfileAndDrift(t *testing.T) {
	e := ordersEngine(t)
	if err := e.AddQuery("by_customer",
		"SELECT o_customer, SUM(o_amount) AS total FROM orders GROUP BY o_customer", 1.0); err != nil {
		t.Fatal(err)
	}
	s, err := e.StartSession(Options{})
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < 2; w++ {
		if _, err := s.Step(ordersData()); err != nil {
			t.Fatal(err)
		}
	}

	samples := s.Profile()
	if len(samples) == 0 {
		t.Fatal("no profile samples after two windows")
	}
	nsub := len(s.Paces())
	seenW1 := false
	for _, sm := range samples {
		if sm.Window < 0 || sm.Window > 1 {
			t.Errorf("sample window %d outside stepped range", sm.Window)
		}
		if sm.Subplan < 0 || sm.Subplan >= nsub {
			t.Errorf("sample subplan %d out of range", sm.Subplan)
		}
		if sm.Work <= 0 || sm.Batches <= 0 {
			t.Errorf("sample %+v records no work", sm)
		}
		if sm.Modeled <= 0 || sm.Drift <= 0 {
			t.Errorf("sample %+v missing the cost-model baseline", sm)
		}
		if sm.Window == 1 {
			seenW1 = true
		}
	}
	if !seenW1 {
		t.Error("no samples from the second window")
	}
	if d := s.Drift(); len(d) != nsub {
		t.Errorf("Drift() has %d entries for %d subplans", len(d), nsub)
	}

	// Admission re-baselines: the profiler tracks the new plan's size and
	// keeps recording.
	if _, err := s.Admit("by_region",
		`SELECT c_region, SUM(o_amount) AS total FROM orders, customers
		 WHERE o_customer = c_name GROUP BY c_region`, 0.2); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Step(ordersData()); err != nil {
		t.Fatal(err)
	}
	if d := s.Drift(); len(d) != len(s.Paces()) {
		t.Errorf("post-admit Drift() has %d entries for %d subplans", len(d), len(s.Paces()))
	}
	grew := false
	for _, sm := range s.Profile() {
		if sm.Window == 2 {
			grew = true
			if sm.Work <= 0 {
				t.Errorf("post-admit sample %+v records no work", sm)
			}
		}
	}
	if !grew {
		t.Error("no samples recorded after admission")
	}
}
