package ishare

import (
	"sync"
	"testing"

	"ishare/internal/pace"
)

// TestOptionsOptWorkersReachesPaceSearch pins the public-API end of the
// Workers plumbing chain: ishare.Options.OptWorkers → opt.Request →
// decompose.Options → pace.Optimizer.
func TestOptionsOptWorkersReachesPaceSearch(t *testing.T) {
	e := ordersEngine(t)
	e.MustAddQuery("all", "SELECT o_customer, SUM(o_amount) FROM orders GROUP BY o_customer", 0.5)
	e.MustAddQuery("urgent", "SELECT o_customer, SUM(o_amount) FROM orders WHERE o_priority = 1 GROUP BY o_customer", 0.2)

	var mu sync.Mutex
	var observed []int
	pace.DebugObserveSearch = func(o *pace.Optimizer) {
		mu.Lock()
		observed = append(observed, o.Workers)
		mu.Unlock()
	}
	defer func() { pace.DebugObserveSearch = nil }()

	if _, err := e.Optimize(Options{OptWorkers: 3}); err != nil {
		t.Fatal(err)
	}

	if len(observed) == 0 {
		t.Fatal("Optimize ran no pace search — the observation seam is dead")
	}
	for i, got := range observed {
		if got != 3 {
			t.Errorf("pace search %d saw Workers = %d, want 3", i, got)
		}
	}
}
