GO ?= go
FUZZTIME ?= 30s

.PHONY: build test race vet bench bench-json bench-diff check fuzz oracle soak churn-soak recal-soak
SOAKTIME ?= 30s
CHURNTIME ?= 30s
RECALTIME ?= 30s

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race runs the full suite under the race detector; the parallel pace search
# and the wave-parallel runner are exercised by their equivalence tests.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench=. -benchmem

# bench-json runs the repo's benchmarks with allocation stats and renders
# them as a machine-readable JSON report (name/iters/ns_op/bytes_op/
# allocs_op per benchmark); CI uploads the file as an artifact so perf
# regressions can be diffed across runs.
BENCH_JSON ?= BENCH_PR10.json
BENCH_TIME ?= 1x
bench-json:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime $(BENCH_TIME) ./... | $(GO) run ./cmd/benchjson -o $(BENCH_JSON)

# bench-diff prints a per-benchmark delta table between the checked-in
# baseline report (BENCH_BASE, frozen before the closed-cost-loop work) and
# the current report produced by bench-json. Informational: the exit status
# ignores how the numbers moved. Set BENCH_INTERLEAVE=N to instead measure
# an A/B env delta live with N interleaved runs per side and report the
# medians — the only defensible acceptance method on a noisy host. The
# default A/B compares the window-reuse fast path off vs on.
BENCH_BASE ?= BENCH_PR9.json
BENCH_INTERLEAVE ?= 0
BENCH_PATTERN ?= BenchmarkWindowReuse
BENCH_PKG ?= ./internal/exec
BENCH_ENV_A ?= ISHARE_REUSE=0
BENCH_ENV_B ?= ISHARE_REUSE=1
bench-diff:
ifeq ($(BENCH_INTERLEAVE),0)
	$(GO) run ./cmd/benchdiff $(BENCH_BASE) $(BENCH_JSON)
else
	$(GO) run ./cmd/benchdiff -interleave $(BENCH_INTERLEAVE) -bench $(BENCH_PATTERN) \
		-pkg $(BENCH_PKG) -benchtime 100x -env-a $(BENCH_ENV_A) -env-b $(BENCH_ENV_B)
endif

check:
	./scripts/check.sh

# fuzz runs each native fuzz target for FUZZTIME (default 30s). Crashers are
# minimized by the go tool and land under testdata/fuzz/ as new corpus seeds.
fuzz:
	$(GO) test ./internal/oracle -run '^$$' -fuzz FuzzEngineVsOracle -fuzztime $(FUZZTIME)
	$(GO) test ./internal/sqlparser -run '^$$' -fuzz FuzzParserRoundTrip -fuzztime $(FUZZTIME)
	$(GO) test ./internal/sqlparser -run '^$$' -fuzz FuzzParse$$ -fuzztime $(FUZZTIME)

# soak fuzzes the scheduler runtime for SOAKTIME (default 30s) of wall
# clock under the race detector: random workloads, pace vectors, window
# splits, worker counts and injected slowdowns, each scenario checked for
# byte-identical reruns and oracle-matching results. Scenario clocks are
# virtual; SOAKTIME only bounds how many scenarios run.
soak:
	$(GO) test ./internal/sched -race -run TestSchedulerSoak -soaktime $(SOAKTIME) -v

# churn-soak fuzzes online admission for CHURNTIME (default 30s) of wall
# clock under the race detector: random workloads carrying random
# admit/retire schedules, each driven through the graft path with state
# transplant on and off and checked against the naive oracle after every
# window, with a byte-identical final work report required against a
# from-scratch build of the final plan.
churn-soak:
	$(GO) test ./internal/oracle -race -run TestChurnSoak -churntime $(CHURNTIME) -v

# recal-soak fuzzes the closed cost loop for RECALTIME (default 30s) of wall
# clock under the race detector: random workloads, pace vectors, injected
# slowdowns and recalibration policies, each scenario required to re-run
# byte-identically and to match the oracle no matter how often the paces
# were re-searched mid-run.
recal-soak:
	$(GO) test ./internal/sched -race -run TestRecalibrationSoak -recaltime $(RECALTIME) -v

# oracle runs the full (non -short) differential suite: hundreds of seeded
# workloads, each checked under batch, random pace vectors, Workers 1 and 4,
# and three decomposed builds against the naive reference evaluator.
oracle:
	$(GO) test ./internal/oracle -run 'TestDifferential|TestInjectedBugCaught|TestShrunkSeeds' -v
