GO ?= go

.PHONY: build test race vet bench check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race runs the full suite under the race detector; the parallel pace search
# and the wave-parallel runner are exercised by their equivalence tests.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench=. -benchmem

check:
	./scripts/check.sh
