package ishare

import (
	"bytes"
	"reflect"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// ordersEngine builds a two-table engine used across the API tests.
func ordersEngine(t *testing.T) *Engine {
	t.Helper()
	e := NewEngine()
	if err := e.CreateTable(TableSchema{
		Name: "orders",
		Columns: []Column{
			{Name: "o_id", Type: Int, Distinct: 1000},
			{Name: "o_customer", Type: String, Distinct: 50},
			{Name: "o_amount", Type: Float},
			{Name: "o_priority", Type: Int, Distinct: 5, Min: 1, Max: 5},
		},
		ExpectedRows: 1000,
	}); err != nil {
		t.Fatal(err)
	}
	if err := e.CreateTable(TableSchema{
		Name: "customers",
		Columns: []Column{
			{Name: "c_name", Type: String, Distinct: 50},
			{Name: "c_region", Type: String, Distinct: 5},
		},
		ExpectedRows: 50,
	}); err != nil {
		t.Fatal(err)
	}
	return e
}

func ordersData() map[string][]Row {
	return map[string][]Row{
		"orders": {
			{1, "acme", 10.0, 1},
			{2, "acme", 20.0, 2},
			{3, "globex", 5.0, 1},
			{4, "initech", 40.0, 5},
		},
		"customers": {
			{"acme", "west"},
			{"globex", "east"},
			{"initech", "west"},
		},
	}
}

func TestEngineEndToEnd(t *testing.T) {
	e := ordersEngine(t)
	if err := e.AddQuery("by_customer",
		"SELECT o_customer, SUM(o_amount) AS total FROM orders GROUP BY o_customer", 1.0); err != nil {
		t.Fatal(err)
	}
	if err := e.AddQuery("by_region",
		`SELECT c_region, SUM(o_amount) AS total FROM orders, customers
		 WHERE o_customer = c_name GROUP BY c_region`, 0.2); err != nil {
		t.Fatal(err)
	}
	p, err := e.Optimize(Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Run(p, ordersData())
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalWork <= 0 {
		t.Error("no work recorded")
	}
	got := renderRows(rep.Results("by_customer"))
	want := []string{"acme|30", "globex|5", "initech|40"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("by_customer = %v, want %v", got, want)
	}
	got = renderRows(rep.Results("by_region"))
	want = []string{"east|5", "west|70"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("by_region = %v, want %v", got, want)
	}
	for _, name := range e.QueryNames() {
		if rep.FinalWork[name] <= 0 {
			t.Errorf("final work for %s = %d", name, rep.FinalWork[name])
		}
	}
}

func TestEngineSharesAcrossQueries(t *testing.T) {
	e := ordersEngine(t)
	e.MustAddQuery("all", "SELECT o_customer, SUM(o_amount) FROM orders GROUP BY o_customer", 1.0)
	e.MustAddQuery("urgent", "SELECT o_customer, SUM(o_amount) FROM orders WHERE o_priority = 1 GROUP BY o_customer", 0.5)
	// Decomposition may legitimately unshare under very tight constraints;
	// pin the no-unshare variant so the sharing diagnostic is stable.
	p, err := e.Optimize(Options{Approach: IShareNoUnshare})
	if err != nil {
		t.Fatal(err)
	}
	if p.SharedOperators() == 0 {
		t.Error("structurally identical queries share nothing")
	}
	var buf bytes.Buffer
	p.Explain(&buf)
	text := buf.String()
	for _, want := range []string{"iShare", "subplan", "pace", "urgent"} {
		if !strings.Contains(text, want) {
			t.Errorf("Explain missing %q:\n%s", want, text)
		}
	}
}

func TestEngineApproaches(t *testing.T) {
	for _, a := range []Approach{IShare, IShareNoUnshare, NoShareUniform, NoShareNonuniform, ShareUniform, IShareBruteForce} {
		e := ordersEngine(t)
		e.MustAddQuery("q", "SELECT o_customer, SUM(o_amount) FROM orders GROUP BY o_customer", 0.5)
		p, err := e.Optimize(Options{Approach: a, MaxPace: 10})
		if err != nil {
			t.Fatalf("%s: %v", a, err)
		}
		rep, err := e.Run(p, ordersData())
		if err != nil {
			t.Fatalf("%s: %v", a, err)
		}
		if len(rep.Results("q")) != 3 {
			t.Errorf("%s: results = %v", a, rep.Results("q"))
		}
	}
}

func TestEngineErrors(t *testing.T) {
	e := NewEngine()
	if _, err := e.Optimize(Options{}); err == nil {
		t.Error("optimize with no queries accepted")
	}
	if err := e.AddQuery("q", "SELECT x FROM missing", 0.5); err == nil {
		t.Error("unknown table accepted")
	}
	if err := e.CreateTable(TableSchema{Name: "t", Columns: []Column{{Name: "a", Type: "BAD"}}}); err == nil {
		t.Error("bad type accepted")
	}
	e2 := ordersEngine(t)
	if err := e2.AddQuery("q", "SELECT o_customer FROM orders", 0); err == nil {
		t.Error("zero constraint accepted")
	}
	e2.MustAddQuery("q", "SELECT o_customer FROM orders", 1)
	p, err := e2.Optimize(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e2.Run(p, map[string][]Row{"orders": {{1}}}); err == nil {
		t.Error("short row accepted")
	}
	if _, err := e2.Optimize(Options{Approach: Approach(42)}); err == nil {
		t.Error("bogus approach accepted")
	}
}

func TestValueConversions(t *testing.T) {
	e := NewEngine()
	e.MustCreateTable(TableSchema{
		Name: "t",
		Columns: []Column{
			{Name: "i", Type: Int},
			{Name: "f", Type: Float},
			{Name: "s", Type: String},
			{Name: "b", Type: Bool},
			{Name: "d", Type: Date},
		},
		ExpectedRows: 10,
	})
	e.MustAddQuery("q", "SELECT i, f, s, b, d FROM t", 1.0)
	p, err := e.Optimize(Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Run(p, map[string][]Row{
		"t": {{int64(7), 1.5, "x", true, 100}},
	})
	if err != nil {
		t.Fatal(err)
	}
	rows := rep.Results("q")
	if len(rows) != 1 {
		t.Fatalf("rows = %v", rows)
	}
	r := rows[0]
	if r[0] != int64(7) || r[1] != 1.5 || r[2] != "x" || r[3] != true || r[4] != int64(100) {
		t.Errorf("row = %#v", r)
	}
}

// renderRows flattens result rows into sorted "a|b" strings with trailing
// float zeros trimmed, for stable comparisons.
func renderRows(rows []Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		parts := make([]string, len(r))
		for j, v := range r {
			switch x := v.(type) {
			case float64:
				parts[j] = strconv.FormatFloat(x, 'g', -1, 64)
			case int64:
				parts[j] = strconv.FormatInt(x, 10)
			case string:
				parts[j] = x
			case bool:
				parts[j] = strconv.FormatBool(x)
			default:
				parts[j] = "?"
			}
		}
		out[i] = strings.Join(parts, "|")
	}
	sort.Strings(out)
	return out
}

func TestRunParallelMatchesRun(t *testing.T) {
	e := ordersEngine(t)
	e.MustAddQuery("q1", "SELECT o_customer, SUM(o_amount) FROM orders GROUP BY o_customer", 0.5)
	e.MustAddQuery("q2", "SELECT o_priority, COUNT(*) FROM orders GROUP BY o_priority", 0.5)
	p, err := e.Optimize(Options{MaxPace: 8})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := e.Run(p, ordersData())
	if err != nil {
		t.Fatal(err)
	}
	par, err := e.RunParallel(p, ordersData(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if seq.TotalWork != par.TotalWork {
		t.Errorf("work differs: %d vs %d", seq.TotalWork, par.TotalWork)
	}
	for _, q := range e.QueryNames() {
		if !reflect.DeepEqual(renderRows(seq.Results(q)), renderRows(par.Results(q))) {
			t.Errorf("%s results differ", q)
		}
	}
}

func TestRunAndCalibrate(t *testing.T) {
	e := ordersEngine(t)
	e.MustAddQuery("q", "SELECT o_customer, SUM(o_amount) FROM orders GROUP BY o_customer", 0.3)
	p, err := e.Optimize(Options{MaxPace: 10})
	if err != nil {
		t.Fatal(err)
	}
	rep, calib, err := e.RunAndCalibrate(p, ordersData())
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalWork <= 0 || len(calib) == 0 {
		t.Fatalf("report %v, calib %d entries", rep.TotalWork, len(calib))
	}
	// Second recurrence plans with the learned factors.
	p2, err := e.Optimize(Options{MaxPace: 10, Calibration: calib})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(p2, ordersData()); err != nil {
		t.Fatal(err)
	}
}

func TestAbsoluteConstraintOverride(t *testing.T) {
	e := ordersEngine(t)
	e.MustAddQuery("q", "SELECT o_customer, SUM(o_amount) FROM orders GROUP BY o_customer", 1.0)
	if _, err := e.Optimize(Options{AbsoluteConstraints: map[string]float64{"nope": 1}}); err == nil {
		t.Error("unknown query in absolute constraints accepted")
	}
	p, err := e.Optimize(Options{AbsoluteConstraints: map[string]float64{"q": 1e12}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(p, ordersData()); err != nil {
		t.Fatal(err)
	}
}

func TestWriteDOT(t *testing.T) {
	e := ordersEngine(t)
	e.MustAddQuery("q", "SELECT o_customer, SUM(o_amount) FROM orders GROUP BY o_customer", 1.0)
	p, err := e.Optimize(Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.WriteDOT(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{"digraph", "cluster_0", "Scan", "pace"} {
		if !strings.Contains(text, want) {
			t.Errorf("DOT missing %q:\n%s", want, text)
		}
	}
}

func TestPlanSaveLoad(t *testing.T) {
	e := ordersEngine(t)
	e.MustAddQuery("q1", "SELECT o_customer, SUM(o_amount) FROM orders GROUP BY o_customer", 0.5)
	e.MustAddQuery("q2", "SELECT o_customer, SUM(o_amount) FROM orders WHERE o_priority = 1 GROUP BY o_customer", 0.2)
	p, err := e.Optimize(Options{MaxPace: 10})
	if err != nil {
		t.Fatal(err)
	}
	data, err := p.Save()
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := e.LoadPlan(data)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := e.Run(p, ordersData())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := e.Run(loaded, ordersData())
	if err != nil {
		t.Fatal(err)
	}
	if r1.TotalWork != r2.TotalWork {
		t.Errorf("loaded plan work %d vs original %d", r2.TotalWork, r1.TotalWork)
	}
	for _, q := range e.QueryNames() {
		if !reflect.DeepEqual(renderRows(r1.Results(q)), renderRows(r2.Results(q))) {
			t.Errorf("%s results differ after reload", q)
		}
	}
	if _, err := e.LoadPlan([]byte("nonsense")); err == nil {
		t.Error("corrupt plan accepted")
	}
}

func TestOrderByLimit(t *testing.T) {
	e := ordersEngine(t)
	e.MustAddQuery("top",
		`SELECT o_customer, SUM(o_amount) AS total FROM orders
		 GROUP BY o_customer ORDER BY total DESC LIMIT 2`, 1.0)
	e.MustAddQuery("positional",
		`SELECT o_customer, SUM(o_amount) AS total FROM orders
		 GROUP BY o_customer ORDER BY 2 ASC`, 1.0)
	p, err := e.Optimize(Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Run(p, ordersData())
	if err != nil {
		t.Fatal(err)
	}
	top := rep.Results("top")
	if len(top) != 2 {
		t.Fatalf("LIMIT ignored: %v", top)
	}
	if top[0][0] != "initech" || top[1][0] != "acme" {
		t.Errorf("DESC order wrong: %v", top)
	}
	asc := rep.Results("positional")
	if len(asc) != 3 || asc[0][0] != "globex" {
		t.Errorf("positional ASC wrong: %v", asc)
	}
}

func TestOrderByErrors(t *testing.T) {
	e := ordersEngine(t)
	if err := e.AddQuery("bad", "SELECT o_customer FROM orders ORDER BY nosuch", 1.0); err == nil {
		t.Error("unknown ORDER BY column accepted")
	}
	if err := e.AddQuery("bad2", "SELECT o_customer FROM orders ORDER BY 9", 1.0); err == nil {
		t.Error("out-of-range position accepted")
	}
	if err := e.AddQuery("bad3", "SELECT o_customer FROM orders LIMIT 1.5", 1.0); err == nil {
		t.Error("fractional LIMIT accepted")
	}
}

func TestReportBreakdown(t *testing.T) {
	e := ordersEngine(t)
	e.MustAddQuery("q1", "SELECT o_customer, SUM(o_amount) FROM orders GROUP BY o_customer", 1.0)
	e.MustAddQuery("q2", "SELECT o_customer, SUM(o_amount) FROM orders WHERE o_priority = 1 GROUP BY o_customer", 0.5)
	p, err := e.Optimize(Options{Approach: IShareNoUnshare, MaxPace: 8})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Run(p, ordersData())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Subplans) == 0 {
		t.Fatal("no subplan stats")
	}
	var sum int64
	sharedSeen := false
	for _, s := range rep.Subplans {
		sum += s.TotalWork
		if len(s.Queries) == 2 {
			sharedSeen = true
		}
		if s.Pace < 1 {
			t.Errorf("subplan %d pace %d", s.Subplan, s.Pace)
		}
	}
	if sum != rep.TotalWork {
		t.Errorf("subplan breakdown sums to %d, report total %d", sum, rep.TotalWork)
	}
	if !sharedSeen {
		t.Error("no shared subplan in breakdown")
	}
	var buf bytes.Buffer
	rep.Breakdown(&buf)
	if !strings.Contains(buf.String(), "q1,q2") {
		t.Errorf("breakdown missing shared query list:\n%s", buf.String())
	}
}
